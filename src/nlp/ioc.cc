#include "nlp/ioc.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace raptor::nlp {

namespace {

bool IsAlnum(char c) { return std::isalnum(static_cast<unsigned char>(c)); }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }
bool IsHex(char c) {
  return IsDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

/// Characters allowed inside a Linux path segment.
bool IsPathChar(char c) {
  return IsAlnum(c) || c == '.' || c == '_' || c == '-' || c == '+';
}

/// Characters allowed inside a Windows path segment.
bool IsWinPathChar(char c) {
  return IsAlnum(c) || c == '.' || c == '_' || c == '-' || c == '+';
}

bool IsDomainChar(char c) { return IsAlnum(c) || c == '-'; }

/// True if position i starts at a word boundary (not glued to a preceding
/// identifier-ish character).
bool BoundaryBefore(std::string_view text, size_t i) {
  if (i == 0) return true;
  char p = text[i - 1];
  return !(IsAlnum(p) || p == '_' || p == '.' || p == '/' || p == '\\' ||
           p == '-' || p == '@');
}

bool BoundaryAfter(std::string_view text, size_t end) {
  if (end >= text.size()) return true;
  char n = text[end];
  return !(IsAlnum(n) || n == '_');
}

/// Strip sentence punctuation glued to the end of a match.
size_t TrimEnd(std::string_view text, size_t begin, size_t end) {
  while (end > begin) {
    char c = text[end - 1];
    if (c == '.' || c == ',' || c == ';' || c == ':' || c == ')' ||
        c == '\'' || c == '"') {
      --end;
    } else {
      break;
    }
  }
  return end;
}

const std::unordered_set<std::string>& FileExtensions() {
  static const std::unordered_set<std::string> kExts = {
      "exe", "dll",  "sys", "sh",  "py",   "pl",   "rb",  "js",  "vbs",
      "bat", "ps1",  "doc", "docx", "xls", "xlsx", "ppt", "pptx", "pdf",
      "zip", "tar",  "gz",  "bz2", "xz",   "rar",  "7z",  "apk", "jar",
      "so",  "bin",  "img", "iso", "elf",  "o",    "txt", "log", "cfg",
      "dat", "tmp",  "php", "jsp", "asp",  "aspx", "msi", "scr", "lnk",
  };
  return kExts;
}

const std::unordered_set<std::string>& DomainTlds() {
  static const std::unordered_set<std::string> kTlds = {
      "com", "net", "org", "io",  "ru", "cn", "info", "biz",
      "co",  "uk",  "de",  "fr",  "jp", "kr", "in",   "onion",
      "xyz", "top", "cc",  "me",  "tv", "su", "ws",   "eu",
  };
  return kTlds;
}

// Every Try* matcher returns the end offset of a match starting at `i`, or
// `i` itself when there is no match.

size_t TryUrl(std::string_view text, size_t i) {
  auto starts = [&](std::string_view prefix) {
    return text.substr(i, prefix.size()) == prefix;
  };
  size_t skip = 0;
  if (starts("https://")) skip = 8;
  else if (starts("http://")) skip = 7;
  else if (starts("ftp://")) skip = 6;
  else if (starts("hxxp://")) skip = 7;   // defanged URLs in OSCTI reports
  else if (starts("hxxps://")) skip = 8;
  if (skip == 0) return i;
  size_t end = i + skip;
  while (end < text.size() && !std::isspace(static_cast<unsigned char>(text[end])) &&
         text[end] != '"' && text[end] != '\'' && text[end] != ')' &&
         text[end] != '>') {
    ++end;
  }
  end = TrimEnd(text, i, end);
  return end > i + skip ? end : i;
}

size_t TryEmail(std::string_view text, size_t i) {
  // Must start at the local part; find '@' then a dotted domain.
  size_t j = i;
  while (j < text.size() && (IsAlnum(text[j]) || text[j] == '.' ||
                             text[j] == '_' || text[j] == '%' ||
                             text[j] == '+' || text[j] == '-')) {
    ++j;
  }
  if (j == i || j >= text.size() || text[j] != '@') return i;
  size_t k = j + 1;
  while (k < text.size() && (IsDomainChar(text[k]) || text[k] == '.')) ++k;
  k = TrimEnd(text, i, k);
  // The last dot must be interior to the (trimmed) domain part.
  size_t last_dot = 0;
  for (size_t d = j + 1; d < k; ++d) {
    if (text[d] == '.') last_dot = d;
  }
  if (last_dot == 0 || last_dot >= k - 1) return i;
  return k;
}

size_t TryRegistry(std::string_view text, size_t i) {
  static const char* kRoots[] = {"HKEY_LOCAL_MACHINE", "HKEY_CURRENT_USER",
                                 "HKEY_CLASSES_ROOT",  "HKEY_USERS",
                                 "HKLM",               "HKCU"};
  size_t root_len = 0;
  for (const char* root : kRoots) {
    std::string_view r(root);
    if (text.substr(i, r.size()) == r) {
      root_len = r.size();
      break;
    }
  }
  if (root_len == 0) return i;
  size_t end = i + root_len;
  while (end < text.size() &&
         (IsAlnum(text[end]) || text[end] == '\\' || text[end] == '_' ||
          text[end] == '.' || text[end] == '-')) {
    ++end;
  }
  return TrimEnd(text, i, end);
}

size_t TryWinPath(std::string_view text, size_t i) {
  if (i + 3 > text.size()) return i;
  if (!std::isalpha(static_cast<unsigned char>(text[i]))) return i;
  if (text[i + 1] != ':' || text[i + 2] != '\\') return i;
  size_t end = i + 3;
  size_t last_good = i;
  while (end < text.size()) {
    size_t seg_start = end;
    while (end < text.size() && IsWinPathChar(text[end])) ++end;
    if (end == seg_start) break;
    last_good = end;
    if (end < text.size() && text[end] == '\\') {
      ++end;
    } else {
      break;
    }
  }
  if (last_good <= i + 3) return i;
  return TrimEnd(text, i, last_good);
}

size_t TryLinuxPath(std::string_view text, size_t i) {
  if (text[i] != '/') return i;
  size_t end = i;
  int segments = 0;
  while (end < text.size() && text[end] == '/') {
    size_t seg_start = end + 1;
    size_t k = seg_start;
    while (k < text.size() && IsPathChar(text[k])) ++k;
    if (k == seg_start) break;
    ++segments;
    end = k;
  }
  if (segments == 0) return i;
  size_t trimmed = TrimEnd(text, i, end);
  // A path must contain a non-dot character after the leading slash.
  if (trimmed <= i + 1) return i;
  return trimmed;
}

size_t TryIp(std::string_view text, size_t i) {
  size_t j = i;
  int octets = 0;
  while (octets < 4) {
    size_t digit_start = j;
    int value = 0;
    while (j < text.size() && IsDigit(text[j]) && j - digit_start < 3) {
      value = value * 10 + (text[j] - '0');
      ++j;
    }
    if (j == digit_start || value > 255) return i;
    ++octets;
    if (octets < 4) {
      if (j >= text.size() || text[j] != '.') return i;
      ++j;
    }
  }
  // Optional CIDR suffix.
  size_t end = j;
  if (end < text.size() && text[end] == '/') {
    size_t k = end + 1;
    size_t digit_start = k;
    while (k < text.size() && IsDigit(text[k]) && k - digit_start < 2) ++k;
    if (k > digit_start) end = k;
  }
  if (!BoundaryAfter(text, end)) return i;
  // Reject version strings like 1.2.3.4.5 (a 5th dotted numeric group), but
  // allow a sentence-final period.
  if (end + 1 < text.size() && text[end] == '.' && IsDigit(text[end + 1])) {
    return i;
  }
  return end;
}

size_t TryHash(std::string_view text, size_t i) {
  size_t j = i;
  while (j < text.size() && IsHex(text[j])) ++j;
  size_t len = j - i;
  if ((len == 32 || len == 40 || len == 64) && BoundaryAfter(text, j)) {
    // Require at least one letter and one digit, else it is a number run.
    bool has_alpha = false, has_digit = false;
    for (size_t k = i; k < j; ++k) {
      if (IsDigit(text[k])) has_digit = true;
      else has_alpha = true;
    }
    if (has_alpha && has_digit) return j;
  }
  return i;
}

size_t TryCve(std::string_view text, size_t i) {
  if (text.substr(i, 4) != "CVE-") return i;
  size_t j = i + 4;
  size_t year_start = j;
  while (j < text.size() && IsDigit(text[j])) ++j;
  if (j - year_start != 4 || j >= text.size() || text[j] != '-') return i;
  ++j;
  size_t num_start = j;
  while (j < text.size() && IsDigit(text[j])) ++j;
  if (j - num_start < 4 || j - num_start > 7) return i;
  return j;
}

size_t TryDomain(std::string_view text, size_t i) {
  if (!IsAlnum(text[i])) return i;
  size_t j = i;
  std::vector<std::pair<size_t, size_t>> labels;  // [begin, end)
  while (true) {
    size_t label_start = j;
    while (j < text.size() && IsDomainChar(text[j])) ++j;
    if (j == label_start) return i;
    labels.emplace_back(label_start, j);
    if (j < text.size() && text[j] == '.' && j + 1 < text.size() &&
        IsDomainChar(text[j + 1])) {
      ++j;
    } else {
      break;
    }
  }
  if (labels.size() < 2) return i;
  auto [tb, te] = labels.back();
  std::string tld(text.substr(tb, te - tb));
  std::transform(tld.begin(), tld.end(), tld.begin(), ::tolower);
  bool tld_ok = DomainTlds().count(tld) > 0;
  if (!tld_ok && labels.size() >= 3) {
    // Reversed-domain identifiers (Android package names such as
    // com.android.defcontainer) put the TLD first.
    auto [fb, fe] = labels.front();
    std::string first(text.substr(fb, fe - fb));
    std::transform(first.begin(), first.end(), first.begin(), ::tolower);
    tld_ok = DomainTlds().count(first) > 0;
  }
  if (!tld_ok) return i;
  // Purely numeric "domains" are really broken IPs.
  bool any_alpha = false;
  for (size_t k = i; k < te; ++k) {
    if (std::isalpha(static_cast<unsigned char>(text[k]))) any_alpha = true;
  }
  if (!any_alpha) return i;
  return te;
}

size_t TryFilename(std::string_view text, size_t i) {
  if (!IsAlnum(text[i]) && text[i] != '_') return i;
  size_t j = i;
  while (j < text.size() && (IsAlnum(text[j]) || text[j] == '_' ||
                             text[j] == '-' || text[j] == '.')) {
    ++j;
  }
  j = TrimEnd(text, i, j);
  // The extension dot must be interior to the (trimmed) candidate; a
  // sentence-final period must not count.
  size_t last_dot = 0;
  for (size_t d = i + 1; d < j; ++d) {
    if (text[d] == '.') last_dot = d;
  }
  if (last_dot == 0 || last_dot <= i || last_dot >= j - 1) return i;
  std::string ext(text.substr(last_dot + 1, j - last_dot - 1));
  std::transform(ext.begin(), ext.end(), ext.begin(), ::tolower);
  if (!FileExtensions().count(ext)) return i;
  return j;
}

int Priority(IocType type) {
  switch (type) {
    case IocType::kUrl: return 0;
    case IocType::kEmail: return 1;
    case IocType::kRegistry: return 2;
    case IocType::kWinFilepath: return 3;
    case IocType::kFilepath: return 4;
    case IocType::kIp: return 5;
    case IocType::kHash: return 6;
    case IocType::kCve: return 7;
    case IocType::kDomain: return 8;
    case IocType::kFilename: return 9;
  }
  return 100;
}

}  // namespace

const char* IocTypeName(IocType type) {
  switch (type) {
    case IocType::kFilepath: return "Filepath";
    case IocType::kWinFilepath: return "WinFilepath";
    case IocType::kFilename: return "Filename";
    case IocType::kIp: return "IP";
    case IocType::kDomain: return "Domain";
    case IocType::kUrl: return "URL";
    case IocType::kEmail: return "Email";
    case IocType::kHash: return "Hash";
    case IocType::kRegistry: return "Registry";
    case IocType::kCve: return "CVE";
  }
  return "?";
}

std::optional<IocType> IocTypeFromName(std::string_view name) {
  static constexpr IocType kAll[] = {
      IocType::kFilepath, IocType::kWinFilepath, IocType::kFilename,
      IocType::kIp,       IocType::kDomain,      IocType::kUrl,
      IocType::kEmail,    IocType::kHash,        IocType::kRegistry,
      IocType::kCve,
  };
  for (IocType t : kAll) {
    if (name == IocTypeName(t)) return t;
  }
  return std::nullopt;
}

std::vector<IocMatch> RecognizeIocs(std::string_view text) {
  struct Candidate {
    IocMatch match;
    int priority;
  };
  std::vector<Candidate> candidates;
  using Matcher = size_t (*)(std::string_view, size_t);
  static const std::pair<Matcher, IocType> kMatchers[] = {
      {TryUrl, IocType::kUrl},
      {TryEmail, IocType::kEmail},
      {TryRegistry, IocType::kRegistry},
      {TryWinPath, IocType::kWinFilepath},
      {TryLinuxPath, IocType::kFilepath},
      {TryIp, IocType::kIp},
      {TryHash, IocType::kHash},
      {TryCve, IocType::kCve},
      {TryDomain, IocType::kDomain},
      {TryFilename, IocType::kFilename},
  };

  for (size_t i = 0; i < text.size(); ++i) {
    if (!BoundaryBefore(text, i) && text[i] != '/') continue;
    for (const auto& [matcher, type] : kMatchers) {
      size_t end = matcher(text, i);
      if (end > i) {
        Candidate c;
        c.match.type = type;
        c.match.begin = i;
        c.match.end = end;
        c.match.text = std::string(text.substr(i, end - i));
        c.priority = Priority(type);
        candidates.push_back(std::move(c));
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.match.begin != b.match.begin) {
                return a.match.begin < b.match.begin;
              }
              size_t alen = a.match.end - a.match.begin;
              size_t blen = b.match.end - b.match.begin;
              if (alen != blen) return alen > blen;  // longest first
              return a.priority < b.priority;
            });
  std::vector<IocMatch> out;
  size_t last_end = 0;
  for (Candidate& c : candidates) {
    if (c.match.begin >= last_end) {
      last_end = c.match.end;
      out.push_back(std::move(c.match));
    }
  }
  return out;
}

bool LooksLikeIoc(std::string_view token) {
  std::vector<IocMatch> matches = RecognizeIocs(token);
  return matches.size() == 1 && matches[0].begin == 0 &&
         matches[0].end == token.size();
}

}  // namespace raptor::nlp
