#include "nlp/protect.h"

namespace raptor::nlp {

const Replacement* ProtectedText::FindAt(size_t offset) const {
  for (const Replacement& r : replacements) {
    if (r.begin == offset) return &r;
  }
  return nullptr;
}

ProtectedText ProtectIocs(std::string_view block) {
  ProtectedText out;
  std::vector<IocMatch> matches = RecognizeIocs(block);
  size_t cursor = 0;
  for (IocMatch& m : matches) {
    out.text.append(block.substr(cursor, m.begin - cursor));
    Replacement rep;
    rep.begin = out.text.size();
    out.text.append(kDummyWord);
    rep.end = out.text.size();
    rep.ioc = std::move(m);
    out.replacements.push_back(std::move(rep));
    cursor = out.replacements.back().ioc.end;
  }
  out.text.append(block.substr(cursor));
  return out;
}

}  // namespace raptor::nlp
