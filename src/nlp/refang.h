// Refanging of defanged IOCs. Public OSCTI reports routinely "defang"
// indicators so they cannot be clicked or auto-fetched: 192[.]168[.]1[.]1,
// evil[.]com, hxxp://..., user[at]host. The extraction pipeline refangs the
// text before IOC recognition so that defanged reports extract identically
// to plain ones.
#pragma once

#include <string>
#include <string_view>

namespace raptor::nlp {

/// Rewrite common defanging conventions back to plain indicators:
///   [.] (.) {.}  ->  .          hxxp / hXXp   ->  http
///   [at] (at)    ->  @          fxp           ->  ftp
///   [:]          ->  :          [://]         ->  ://
/// The transformation is idempotent and leaves plain text untouched.
std::string RefangText(std::string_view text);

}  // namespace raptor::nlp
