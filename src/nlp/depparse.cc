#include "nlp/depparse.h"

#include <algorithm>

#include "common/strings.h"

namespace raptor::nlp {

namespace {

bool IsNominal(Pos pos) {
  return pos == Pos::kNoun || pos == Pos::kPropn || pos == Pos::kPron ||
         pos == Pos::kNum;
}

bool IsVerbal(Pos pos) { return pos == Pos::kVerb; }

}  // namespace

DepTree::DepTree(std::vector<DepNode> nodes) : nodes_(std::move(nodes)) {
  Reindex();
}

void DepTree::Reindex() {
  root_ = -1;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].head < 0) {
      root_ = static_cast<int>(i);
      break;
    }
  }
}

std::vector<int> DepTree::ChildrenOf(int i) const {
  std::vector<int> out;
  for (size_t k = 0; k < nodes_.size(); ++k) {
    if (nodes_[k].head == i) out.push_back(static_cast<int>(k));
  }
  return out;
}

std::vector<int> DepTree::PathToRoot(int i) const {
  std::vector<int> path;
  int cur = i;
  size_t guard = 0;
  while (cur >= 0 && guard++ <= nodes_.size()) {
    path.push_back(cur);
    cur = nodes_[cur].head;
  }
  return path;
}

int DepTree::Lca(int a, int b) const {
  std::vector<int> pa = PathToRoot(a);
  std::vector<int> pb = PathToRoot(b);
  for (int x : pa) {
    for (int y : pb) {
      if (x == y) return x;
    }
  }
  return -1;
}

std::string DepTree::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const DepNode& n = nodes_[i];
    out += StrFormat("%2zu %-18s %-6s %-10s head=%d\n", i, n.text.c_str(),
                     PosName(n.pos), n.deprel.c_str(), n.head);
  }
  return out;
}

namespace {

/// Implements the chunk-then-attach parse. Operates on mutable node array.
class RuleParser {
 public:
  explicit RuleParser(std::vector<DepNode>* nodes) : nodes_(*nodes) {}

  void Parse() {
    n_ = static_cast<int>(nodes_.size());
    if (n_ == 0) return;
    ChunkNounPhrases();
    AttachVerbStructure();
    AttachLeftovers();
  }

 private:
  bool Attached(int i) const { return nodes_[i].head >= 0; }

  void Attach(int child, int head, const char* rel) {
    if (child == head || child < 0 || head < 0) return;
    nodes_[child].head = head;
    nodes_[child].deprel = rel;
  }

  /// Group maximal runs of DET/ADJ/NUM/NOUN/PROPN into noun phrases with a
  /// head-final convention; record the chunk head for each member.
  void ChunkNounPhrases() {
    chunk_head_.assign(n_, -1);
    int i = 0;
    while (i < n_) {
      Pos p = nodes_[i].pos;
      if (!(p == Pos::kDet || p == Pos::kAdj || IsNominal(p))) {
        ++i;
        continue;
      }
      int start = i;
      int last_nominal = -1;
      while (i < n_) {
        Pos q = nodes_[i].pos;
        if (q == Pos::kDet || q == Pos::kAdj || IsNominal(q)) {
          if (IsNominal(q)) last_nominal = i;
          ++i;
        } else {
          break;
        }
      }
      if (last_nominal < 0) continue;  // a bare determiner/adjective run
      int head = last_nominal;
      for (int k = start; k < i; ++k) {
        chunk_head_[k] = head;
        if (k == head) continue;
        Pos q = nodes_[k].pos;
        if (q == Pos::kDet) {
          Attach(k, head, "det");
        } else if (q == Pos::kAdj) {
          Attach(k, head, "amod");
        } else if (q == Pos::kNum) {
          Attach(k, head, "nummod");
        } else if (k < head) {
          Attach(k, head, "compound");
        } else {
          Attach(k, head, "appos");
        }
      }
      chunk_heads_.push_back(head);
    }
  }

  int PrevNonPunct(int i) const {
    for (int k = i - 1; k >= 0; --k) {
      if (nodes_[k].pos != Pos::kPunct) return k;
    }
    return -1;
  }

  int NearestVerbLeft(int i) const {
    for (int k = i - 1; k >= 0; --k) {
      if (IsVerbal(nodes_[k].pos)) return k;
    }
    return -1;
  }

  int NearestChunkHeadLeft(int i) const {
    for (int k = i - 1; k >= 0; --k) {
      if (chunk_head_[k] == k) return k;
    }
    return -1;
  }

  void AttachVerbStructure() {
    std::vector<int> verbs;
    for (int i = 0; i < n_; ++i) {
      if (IsVerbal(nodes_[i].pos)) verbs.push_back(i);
    }
    // A sentence with no main verb: promote an AUX if present.
    if (verbs.empty()) {
      for (int i = 0; i < n_; ++i) {
        if (nodes_[i].pos == Pos::kAux) {
          verbs.push_back(i);
          break;
        }
      }
    }
    if (verbs.empty()) {
      // Nominal sentence: first chunk head (or first token) is the root.
      root_ = chunk_heads_.empty() ? 0 : chunk_heads_[0];
      return;
    }

    // First pass: decide each verb's attachment.
    root_ = -1;
    for (int v : verbs) {
      int prev = PrevNonPunct(v);
      Pos prev_pos = prev >= 0 ? nodes_[prev].pos : Pos::kX;
      std::string prev_lower = prev >= 0 ? ToLower(nodes_[prev].text) : "";
      int left_verb = NearestVerbLeft(v);

      bool is_passive = false;
      // Auxiliaries immediately before (possibly with adverbs between).
      int scan = v - 1;
      while (scan >= 0 && (nodes_[scan].pos == Pos::kAdv ||
                           nodes_[scan].pos == Pos::kAux)) {
        if (nodes_[scan].pos == Pos::kAux) {
          std::string aux_lemma = Lemma(nodes_[scan].text, Pos::kAux);
          bool be_aux = aux_lemma == "be";
          Attach(scan, v, be_aux && EndsWith(nodes_[v].text, "ed")
                              ? "auxpass"
                              : "aux");
          if (be_aux && (EndsWith(nodes_[v].text, "ed") ||
                         EndsWith(ToLower(nodes_[v].text), "en"))) {
            is_passive = true;
          }
        } else {
          Attach(scan, v, "advmod");
        }
        --scan;
      }
      passive_.push_back(is_passive ? v : -1);

      if (prev >= 0 && prev_pos == Pos::kPart && prev_lower == "to" &&
          left_verb >= 0) {
        Attach(prev, v, "mark");
        Attach(v, left_verb, "xcomp");
      } else if (prev >= 0 && prev_pos == Pos::kAdp && left_verb >= 0 &&
                 EndsWith(ToLower(nodes_[v].text), "ing")) {
        // "by using X": the gerund complements the preposition.
        Attach(prev, left_verb, "prep");
        Attach(v, prev, "pcomp");
      } else if (prev >= 0 && prev_pos == Pos::kCconj && left_verb >= 0) {
        Attach(prev, v, "cc");
        Attach(v, left_verb, "conj");
      } else if (prev >= 0 && chunk_head_[prev] == prev &&
                 EndsWith(ToLower(nodes_[v].text), "ing")) {
        // Gerund directly after a noun modifies it: "the process X reading
        // from Y".
        Attach(v, prev, "acl");
      } else if (prev >= 0 && prev_pos == Pos::kSconj) {
        // Relative clause: attaches to the nearest noun before the SCONJ.
        Attach(prev, v, "mark");
        int noun = NearestChunkHeadLeft(prev);
        if (noun >= 0) {
          Attach(v, noun, "relcl");
        } else if (left_verb >= 0) {
          Attach(v, left_verb, "advcl");
        }
      } else if (root_ < 0) {
        root_ = v;  // main verb
      } else if (left_verb >= 0) {
        Attach(v, left_verb, "conj");
      }
    }
    if (root_ < 0) {
      // Every verb got attached (e.g. a lone acl gerund): the root is the
      // top of the tree reachable from the first verb.
      int cur = verbs[0];
      int guard = 0;
      while (nodes_[cur].head >= 0 && guard++ <= n_) cur = nodes_[cur].head;
      root_ = cur;
    }

    // Second pass: subjects and right-side dependents per verb.
    for (int v : verbs) AttachArguments(v);

    // Leading prepositional phrases ("As a first step, ..."): attach any
    // unattached preposition to the root verb, its object to it.
    for (int i = 0; i < n_; ++i) {
      if (nodes_[i].pos == Pos::kAdp && !Attached(i) && i != root_) {
        Attach(i, root_, "prep");
        for (int k = i + 1; k < n_; ++k) {
          if (chunk_head_[k] == k && !Attached(k)) {
            Attach(k, i, "pobj");
            break;
          }
          if (IsVerbal(nodes_[k].pos) || nodes_[k].pos == Pos::kAdp) break;
        }
      }
    }
  }

  bool IsPassive(int v) const {
    return std::find(passive_.begin(), passive_.end(), v) != passive_.end();
  }

  void AttachArguments(int v) {
    // Subject: nearest unattached chunk head to the left. Verbs attached as
    // acl take their semantic subject from their head noun, so they get no
    // nsubj edge (which would form a cycle).
    if (nodes_[v].deprel != "acl") {
      int subj = -1;
      for (int k = v - 1; k >= 0; --k) {
        if (IsVerbal(nodes_[k].pos)) break;  // crossed into previous clause
        if (chunk_head_[k] == k && !Attached(k) && k != nodes_[v].head) {
          subj = k;
          break;
        }
      }
      if (subj >= 0) {
        Attach(subj, v, IsPassive(v) ? "nsubjpass" : "nsubj");
      }
    }

    // Right side: objects, prepositional phrases, adverbs until the next
    // verb or clause boundary.
    bool have_dobj = false;
    int last_object = -1;
    for (int k = v + 1; k < n_; ++k) {
      if (IsVerbal(nodes_[k].pos) || nodes_[k].pos == Pos::kAux ||
          nodes_[k].pos == Pos::kSconj) {
        break;
      }
      if (nodes_[k].pos == Pos::kPart) break;  // "to" introduces an xcomp
      // A comma ends this verb's argument span (the next clause owns what
      // follows; its own verb pass will claim it).
      if (nodes_[k].pos == Pos::kPunct && nodes_[k].text == ",") break;
      if (Attached(k) && chunk_head_[k] != k) continue;
      if (nodes_[k].pos == Pos::kAdp) {
        if (Attached(k)) continue;
        const char* rel =
            IsPassive(v) && ToLower(nodes_[k].text) == "by" ? "agent" : "prep";
        Attach(k, v, rel);
        // Its object: the next chunk head.
        for (int m = k + 1; m < n_; ++m) {
          if (chunk_head_[m] == m && !Attached(m)) {
            Attach(m, k, "pobj");
            last_object = m;
            k = m;
            break;
          }
          if (IsVerbal(nodes_[m].pos) || nodes_[m].pos == Pos::kAdp) {
            k = m - 1;
            break;
          }
        }
        continue;
      }
      if (nodes_[k].pos == Pos::kAdv && !Attached(k)) {
        Attach(k, v, "advmod");
        continue;
      }
      if (nodes_[k].pos == Pos::kCconj && !Attached(k) && last_object >= 0) {
        // Object conjunction: "reads X and Y".
        for (int m = k + 1; m < n_; ++m) {
          if (chunk_head_[m] == m && !Attached(m)) {
            Attach(k, m, "cc");
            Attach(m, last_object, "conj");
            last_object = m;
            k = m;
            break;
          }
          if (IsVerbal(nodes_[m].pos)) break;
        }
        continue;
      }
      if (chunk_head_[k] == k && !Attached(k)) {
        if (!have_dobj) {
          Attach(k, v, "dobj");
          have_dobj = true;
          last_object = k;
        } else {
          Attach(k, last_object >= 0 ? last_object : v, "appos");
          last_object = k;
        }
      }
    }
  }

  void AttachLeftovers() {
    for (int i = 0; i < n_; ++i) {
      if (i == root_) {
        nodes_[i].head = -1;
        nodes_[i].deprel = "root";
        continue;
      }
      if (!Attached(i)) {
        Attach(i, root_, nodes_[i].pos == Pos::kPunct ? "punct" : "dep");
      }
    }
    // Break any accidental cycles (defensive; rules should not create any).
    for (int i = 0; i < n_; ++i) {
      int cur = i;
      int steps = 0;
      while (cur >= 0 && steps++ <= n_) cur = nodes_[cur].head;
      if (steps > n_) {
        nodes_[i].head = root_ == i ? -1 : root_;
        nodes_[i].deprel = "dep";
      }
    }
  }

  std::vector<DepNode>& nodes_;
  int n_ = 0;
  int root_ = 0;
  std::vector<int> chunk_head_;
  std::vector<int> chunk_heads_;
  std::vector<int> passive_;
};

}  // namespace

DepTree ParseDependency(const std::vector<Token>& tokens,
                        const std::vector<Pos>& tags) {
  std::vector<DepNode> nodes;
  nodes.reserve(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    DepNode n;
    n.text = tokens[i].text;
    n.pos = tags[i];
    n.lemma = Lemma(n.text, n.pos);
    n.begin = tokens[i].begin;
    n.end = tokens[i].end;
    nodes.push_back(std::move(n));
  }
  RuleParser parser(&nodes);
  parser.Parse();
  return DepTree(std::move(nodes));
}

}  // namespace raptor::nlp
