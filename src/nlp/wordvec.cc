#include "nlp/wordvec.h"

#include <cmath>
#include <string>

namespace raptor::nlp {

namespace {

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

WordVec EmbedWord(std::string_view word) {
  WordVec v{};
  std::string padded = "^" + std::string(word) + "$";
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    uint64_t h = Fnv1a(std::string_view(padded).substr(i, 3));
    size_t dim = h % kWordVecDim;
    float sign = (h >> 32) & 1 ? 1.0f : -1.0f;
    v[dim] += sign;
  }
  double norm = 0;
  for (float x : v) norm += static_cast<double>(x) * x;
  if (norm > 0) {
    float inv = static_cast<float>(1.0 / std::sqrt(norm));
    for (float& x : v) x *= inv;
  }
  return v;
}

double CosineSimilarity(const WordVec& a, const WordVec& b) {
  double dot = 0;
  for (size_t i = 0; i < kWordVecDim; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
  }
  return dot;
}

double WordSimilarity(std::string_view a, std::string_view b) {
  return CosineSimilarity(EmbedWord(a), EmbedWord(b));
}

}  // namespace raptor::nlp
