// Rule-based dependency parser. Substitutes spaCy's pretrained statistical
// parser (Step 4 of Algorithm 1): after IOC Protection, OSCTI prose is
// plain English with a narrow syntactic repertoire (SVO clauses, purpose
// infinitives, "by"-gerunds, relative clauses, conjunction chains), which a
// deterministic chunk-then-attach parser covers well. The parser is a
// general component: it has no knowledge of IOCs or the security domain.
//
// Produced relations (Universal-Dependencies-flavoured): root, nsubj,
// nsubjpass, dobj, pobj, prep, agent, aux, auxpass, mark, xcomp, pcomp,
// acl, relcl, conj, cc, det, amod, nummod, compound, advmod, punct, dep.
#pragma once

#include <string>
#include <vector>

#include "nlp/pos.h"
#include "nlp/tokenizer.h"

namespace raptor::nlp {

struct DepNode {
  std::string text;
  std::string lemma;
  Pos pos = Pos::kX;
  int head = -1;          // index of head node; -1 for the root
  std::string deprel = "dep";
  size_t begin = 0;       // byte offsets in the parsed sentence
  size_t end = 0;
};

class DepTree {
 public:
  DepTree() = default;
  explicit DepTree(std::vector<DepNode> nodes);

  const std::vector<DepNode>& nodes() const { return nodes_; }
  std::vector<DepNode>& mutable_nodes() { return nodes_; }
  size_t size() const { return nodes_.size(); }
  const DepNode& node(size_t i) const { return nodes_[i]; }

  int root() const { return root_; }

  /// Children of node i (indices), in token order.
  std::vector<int> ChildrenOf(int i) const;

  /// Path from node i up to the root (inclusive of i and root).
  std::vector<int> PathToRoot(int i) const;

  /// Lowest common ancestor of a and b (may be a or b), or -1 on forest
  /// corruption.
  int Lca(int a, int b) const;

  /// Recompute root after head edits.
  void Reindex();

  /// Pretty printer for debugging and tests.
  std::string ToString() const;

 private:
  std::vector<DepNode> nodes_;
  int root_ = -1;
};

/// Parse one tagged sentence into a dependency tree.
DepTree ParseDependency(const std::vector<Token>& tokens,
                        const std::vector<Pos>& tags);

}  // namespace raptor::nlp
