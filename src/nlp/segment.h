// Block and sentence segmentation (Steps 1 and 3 of Algorithm 1).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace raptor::nlp {

struct Span {
  std::string text;
  size_t begin = 0;  // byte offsets into the segmented string
  size_t end = 0;
};

/// Split an OSCTI article into blocks at blank lines (paragraphs).
std::vector<Span> SegmentBlocks(std::string_view document);

/// Split a block into sentences. A sentence ends at '.', '!' or '?'
/// followed by whitespace and an upper-case/digit start (or end of text),
/// with a small abbreviation guard (e.g., "e.g.", "i.e.", honorifics).
std::vector<Span> SegmentSentences(std::string_view block);

}  // namespace raptor::nlp
