// Hashed character-n-gram word vectors. Substitutes spaCy's pretrained
// word vectors in extraction Step 8 (IOC scan & merge): IOC strings that
// are small variations of each other ("/tmp/upload.tar" vs "upload.tar")
// land close in this space, unrelated strings do not.
#pragma once

#include <array>
#include <string_view>

namespace raptor::nlp {

inline constexpr size_t kWordVecDim = 64;
using WordVec = std::array<float, kWordVecDim>;

/// Embed a word/string as a bag of hashed character trigrams (with boundary
/// markers), L2-normalized.
WordVec EmbedWord(std::string_view word);

/// Cosine similarity of two embeddings, in [-1, 1].
double CosineSimilarity(const WordVec& a, const WordVec& b);

/// Convenience: cosine similarity of two raw strings.
double WordSimilarity(std::string_view a, std::string_view b);

}  // namespace raptor::nlp
