#include "persist/checkpointer.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace raptor::persist {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kCurrentHeader = "raptor-durable v2";

std::string SnapshotDirName(uint64_t seq) {
  return StrFormat("snap-%010llu", static_cast<unsigned long long>(seq));
}

/// Parse the numeric <seq> out of "wal-<seq>.seg" / "snap-<seq>"; false if
/// the name does not match the pattern.
bool ParseSeqSuffix(std::string_view name, std::string_view prefix,
                    std::string_view suffix, uint64_t* seq) {
  if (name.size() <= prefix.size() + suffix.size() ||
      name.substr(0, prefix.size()) != prefix ||
      name.substr(name.size() - suffix.size()) != suffix) {
    return false;
  }
  std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  long long v = 0;
  if (!ParseInt64(digits, &v) || v < 0) return false;
  *seq = static_cast<uint64_t>(v);
  return true;
}

}  // namespace

Checkpointer::Checkpointer(DurabilityOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<Checkpointer>> Checkpointer::Open(
    const DurabilityOptions& options) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("Checkpointer::Open requires a data_dir");
  }
  std::unique_ptr<Checkpointer> cp(new Checkpointer(options));
  RAPTOR_RETURN_NOT_OK(cp->Recover());
  return cp;
}

SystemSnapshot Checkpointer::TakeRestoredSnapshot() {
  SystemSnapshot snap = std::move(*restored_);
  restored_.reset();
  return snap;
}

Status Checkpointer::Recover() {
  const std::string& dir = options_.data_dir;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::Internal("cannot create data dir: " + dir);

  wal_ = std::make_unique<WalWriter>(dir, options_);

  // Fresh directory: no CURRENT yet. Start segment 1 and publish an empty
  // manifest so a crash before the first checkpoint still recovers.
  const std::string current_path = dir + "/CURRENT";
  if (!fs::exists(current_path)) {
    RAPTOR_RETURN_NOT_OK(wal_->StartSegment(1));
    wal_min_seq_ = 1;
    return PublishCurrent("", 1);
  }

  // Parse CURRENT.
  {
    std::ifstream in(current_path);
    if (!in) return Status::Internal("cannot read: " + current_path);
    std::string header, snapshot_line, wal_line;
    std::getline(in, header);
    std::getline(in, snapshot_line);
    std::getline(in, wal_line);
    if (TrimView(header) != kCurrentHeader ||
        !StartsWith(snapshot_line, "snapshot ") ||
        !StartsWith(wal_line, "wal ")) {
      return Status::ParseError("malformed CURRENT manifest: " +
                                current_path);
    }
    std::string name(TrimView(std::string_view(snapshot_line).substr(9)));
    if (name != "-") current_snapshot_ = std::move(name);
    long long min_seq = 0;
    if (!ParseInt64(TrimView(std::string_view(wal_line).substr(4)),
                    &min_seq) ||
        min_seq < 1) {
      return Status::ParseError("bad WAL floor in CURRENT: " + current_path);
    }
    wal_min_seq_ = static_cast<uint64_t>(min_seq);
  }

  // Load the published snapshot.
  if (!current_snapshot_.empty()) {
    RAPTOR_ASSIGN_OR_RETURN(SystemSnapshot snap,
                            ReadSnapshot(dir + "/" + current_snapshot_));
    stats_.restored = true;
    stats_.restored_epoch = snap.epoch;
    restored_ = std::move(snap);
    uint64_t snap_seq = 0;
    if (ParseSeqSuffix(current_snapshot_, "snap-", "", &snap_seq)) {
      next_snapshot_seq_ = snap_seq + 1;
    }
  }

  // Scan for live segments (seq >= the manifest's floor). Segments below
  // the floor are leftovers of an interrupted prune; ignore them.
  for (const auto& entry : fs::directory_iterator(dir)) {
    uint64_t seq = 0;
    if (ParseSeqSuffix(entry.path().filename().string(), "wal-", ".seg",
                       &seq) &&
        seq >= wal_min_seq_) {
      tail_segments_.push_back(seq);
    }
  }
  std::sort(tail_segments_.begin(), tail_segments_.end());
  for (size_t i = 1; i < tail_segments_.size(); ++i) {
    if (tail_segments_[i] != tail_segments_[i - 1] + 1) {
      return Status::Internal(
          StrFormat("WAL segment gap: %llu then %llu",
                    static_cast<unsigned long long>(tail_segments_[i - 1]),
                    static_cast<unsigned long long>(tail_segments_[i])));
    }
  }

  if (tail_segments_.empty()) {
    // The manifest promises a segment at the floor; its absence means the
    // process died between publishing CURRENT and creating the segment,
    // which PublishCurrent's ordering forbids — treat as a fresh start at
    // the floor.
    RAPTOR_RETURN_NOT_OK(wal_->StartSegment(wal_min_seq_));
    return Status::OK();
  }

  // Validate the newest segment and truncate a torn tail so the writer
  // can append; earlier segments are validated during ReplayTail.
  const uint64_t last = tail_segments_.back();
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  bool truncated = false;
  RAPTOR_RETURN_NOT_OK(ReadWalSegment(dir + "/" + WalSegmentName(last), last,
                                      &records, &valid_bytes, &truncated));
  if (truncated) stats_.wal_tail_truncated = true;
  return wal_->OpenExisting(last, valid_bytes);
}

Status Checkpointer::ReplayTail(
    const std::function<Status(const WalRecord&)>& apply) {
  for (uint64_t seq : tail_segments_) {
    std::vector<WalRecord> records;
    RAPTOR_RETURN_NOT_OK(
        ReadWalSegment(options_.data_dir + "/" + WalSegmentName(seq), seq,
                       &records, nullptr, nullptr));
    for (const WalRecord& record : records) {
      RAPTOR_RETURN_NOT_OK(apply(record));
      ++stats_.replayed_records;
    }
  }
  tail_segments_.clear();
  return Status::OK();
}

Status Checkpointer::PublishCurrent(const std::string& snapshot_name,
                                    uint64_t wal_min) {
  const std::string tmp = options_.data_dir + "/CURRENT.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return Status::Internal("cannot write: " + tmp);
    out << kCurrentHeader << "\n"
        << "snapshot " << (snapshot_name.empty() ? "-" : snapshot_name)
        << "\n"
        << "wal " << wal_min << "\n";
    if (!out.good()) return Status::Internal("write failed: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, options_.data_dir + "/CURRENT", ec);
  if (ec) return Status::Internal("cannot publish CURRENT manifest");
  current_snapshot_ = snapshot_name;
  wal_min_seq_ = wal_min;
  return Status::OK();
}

Status Checkpointer::WriteCheckpoint(const SystemSnapshot& snap) {
  const std::string& dir = options_.data_dir;
  const std::string name = SnapshotDirName(next_snapshot_seq_++);

  // 1. Write the snapshot to a temp dir, then rename it into place (a
  //    crash leaves only an unreferenced .tmp dir, pruned later).
  const std::string tmp_dir = dir + "/." + name + ".tmp";
  std::error_code ec;
  fs::remove_all(tmp_dir, ec);  // leftover of an earlier crash
  uint64_t bytes = 0;
  RAPTOR_RETURN_NOT_OK(WriteSnapshot(tmp_dir, snap, options_, &bytes));
  fs::rename(tmp_dir, dir + "/" + name, ec);
  if (ec) return Status::Internal("cannot publish snapshot: " + name);

  // 2. Rotate the WAL onto a fresh segment: every record in it is newer
  //    than the snapshot, so replay-after-restore applies all of it
  //    unconditionally.
  const uint64_t new_min = wal_->active_seq() + 1;
  RAPTOR_RETURN_NOT_OK(wal_->StartSegment(new_min));

  // 3. Atomically publish both; only now is the old state dead.
  RAPTOR_RETURN_NOT_OK(PublishCurrent(name, new_min));

  // 4. Prune superseded artifacts.
  Prune(name, new_min);

  ++stats_.checkpoints;
  stats_.snapshot_bytes = bytes;
  return Status::OK();
}

void Checkpointer::Prune(const std::string& keep_snapshot, uint64_t wal_min) {
  std::error_code ec;
  std::vector<fs::path> doomed;
  for (const auto& entry : fs::directory_iterator(options_.data_dir, ec)) {
    const std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    if (ParseSeqSuffix(name, "wal-", ".seg", &seq) && seq < wal_min) {
      doomed.push_back(entry.path());
    } else if (ParseSeqSuffix(name, "snap-", "", &seq) &&
               name != keep_snapshot) {
      doomed.push_back(entry.path());
    } else if (StartsWith(name, ".snap-") && name.ends_with(".tmp")) {
      doomed.push_back(entry.path());
    }
  }
  for (const fs::path& p : doomed) fs::remove_all(p, ec);
}

DurabilityStats Checkpointer::stats() const {
  DurabilityStats out = stats_;
  if (wal_ != nullptr) {
    out.wal_records = wal_->records_appended();
    out.wal_bytes = wal_->bytes_appended();
    out.wal_segments = wal_->segments_created();
  }
  return out;
}

}  // namespace raptor::persist
