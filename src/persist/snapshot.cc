#include "persist/snapshot.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "persist/codec.h"

namespace raptor::persist {

namespace {

constexpr std::string_view kMetaMagic = "RSNPMETA";
constexpr std::string_view kEntitiesMagic = "RSNPENTS";
constexpr std::string_view kEventsMagic = "RSNPEVTS";

std::string EventShardName(uint32_t shard) {
  return StrFormat("events-%03u.bin", shard);
}

/// Write `body` (magic already included) with a trailing CRC, optionally
/// fsynced.
Status WriteFileChecked(const std::string& path, std::string body,
                        const DurabilityOptions& options) {
  PutU32(&body, Crc32(std::string_view(body)));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot create: " + path);
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size() &&
      std::fflush(f) == 0 &&
      (options.fsync != FsyncMode::kAlways || fsync(fileno(f)) == 0);
  std::fclose(f);
  if (!ok) return Status::Internal("write failed: " + path);
  return Status::OK();
}

/// Read a whole file and verify magic + trailing CRC; returns the body
/// between them.
Result<std::string> ReadFileChecked(const std::string& path,
                                    std::string_view magic) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string data = ss.str();
  if (data.size() < magic.size() + 4 ||
      std::string_view(data).substr(0, magic.size()) != magic) {
    return Status::ParseError("bad snapshot file header: " + path);
  }
  const std::string_view checked(data.data(), data.size() - 4);
  ByteReader crc_reader(std::string_view(data).substr(data.size() - 4));
  uint32_t crc = 0;
  crc_reader.ReadU32(&crc);
  if (Crc32(checked) != crc) {
    return Status::ParseError("snapshot file checksum mismatch: " + path);
  }
  return data.substr(magic.size(), data.size() - magic.size() - 4);
}

}  // namespace

Status WriteSnapshot(const std::string& dir, const SystemSnapshot& snap,
                     const DurabilityOptions& options,
                     uint64_t* bytes_written) {
  std::error_code ec;
  if (!std::filesystem::create_directories(dir, ec) || ec) {
    return Status::Internal("cannot create snapshot dir: " + dir);
  }
  uint64_t total = 0;

  const uint32_t shards = std::max<uint32_t>(1, options.snapshot_shards);
  // meta.bin
  {
    std::string body(kMetaMagic);
    PutU64(&body, snap.epoch);
    PutU32(&body, shards);
    PutU64(&body, snap.store.next_event_id);
    PutU64(&body, snap.store.evicted_through);
    PutU64(&body, snap.store.raw_entities_consumed);
    PutU64(&body, snap.store.reduction_input_events);
    PutU64(&body, snap.store.entities.size());
    PutU64(&body, snap.store.events.size());
    PutU64(&body, snap.store.carry.size());
    for (const audit::SystemEvent& ev : snap.store.carry) {
      EncodeEvent(ev, &body);
    }
    PutU64(&body, snap.epoch_marks.size());
    for (const auto& [epoch, event_id] : snap.epoch_marks) {
      PutU64(&body, epoch);
      PutU64(&body, event_id);
    }
    PutU64(&body, snap.standing.size());
    for (const StandingSeen& s : snap.standing) {
      PutString(&body, s.key);
      PutU64(&body, s.total_rows);
      PutU64(&body, s.rows.size());
      for (const std::vector<sql::Value>& row : s.rows) {
        PutU32(&body, static_cast<uint32_t>(row.size()));
        for (const sql::Value& v : row) EncodeValue(v, &body);
      }
    }
    PutU64(&body, snap.stream_offsets.size());
    for (const auto& [stream, offset] : snap.stream_offsets) {
      PutString(&body, stream);
      PutU64(&body, offset);
    }
    total += body.size() + 4;
    RAPTOR_RETURN_NOT_OK(WriteFileChecked(dir + "/meta.bin", std::move(body),
                                          options));
  }

  // entities.bin
  {
    std::string body(kEntitiesMagic);
    PutU64(&body, snap.store.entities.size());
    for (const audit::SystemEntity& e : snap.store.entities) {
      EncodeEntity(e, &body);
    }
    total += body.size() + 4;
    RAPTOR_RETURN_NOT_OK(
        WriteFileChecked(dir + "/entities.bin", std::move(body), options));
  }

  // events-<k>.bin: N contiguous id ranges so restore concatenates shards
  // back into one id-sorted vector.
  const size_t n = snap.store.events.size();
  const size_t per_shard = (n + shards - 1) / shards;
  for (uint32_t k = 0; k < shards; ++k) {
    const size_t begin = std::min(n, k * per_shard);
    const size_t end = std::min(n, begin + per_shard);
    std::string body(kEventsMagic);
    PutU32(&body, k);
    PutU64(&body, end - begin);
    for (size_t i = begin; i < end; ++i) {
      EncodeEvent(snap.store.events[i], &body);
    }
    total += body.size() + 4;
    RAPTOR_RETURN_NOT_OK(
        WriteFileChecked(dir + "/" + EventShardName(k), std::move(body),
                         options));
  }

  if (bytes_written != nullptr) *bytes_written = total;
  return Status::OK();
}

Result<SystemSnapshot> ReadSnapshot(const std::string& dir) {
  SystemSnapshot snap;
  uint32_t shards = 0;
  uint64_t n_entities = 0, n_events = 0;
  {
    RAPTOR_ASSIGN_OR_RETURN(std::string body,
                            ReadFileChecked(dir + "/meta.bin", kMetaMagic));
    ByteReader in(body);
    in.ReadU64(&snap.epoch);
    in.ReadU32(&shards);
    in.ReadU64(&snap.store.next_event_id);
    uint64_t evicted = 0;
    in.ReadU64(&evicted);
    snap.store.evicted_through = evicted;
    in.ReadU64(&snap.store.raw_entities_consumed);
    in.ReadU64(&snap.store.reduction_input_events);
    in.ReadU64(&n_entities);
    in.ReadU64(&n_events);
    uint64_t n_carry = 0;
    in.ReadU64(&n_carry);
    for (uint64_t i = 0; i < n_carry && !in.failed(); ++i) {
      audit::SystemEvent ev;
      if (!DecodeEvent(&in, &ev)) {
        return Status::ParseError("snapshot meta: bad carry event");
      }
      snap.store.carry.push_back(std::move(ev));
    }
    uint64_t n_marks = 0;
    in.ReadU64(&n_marks);
    for (uint64_t i = 0; i < n_marks && !in.failed(); ++i) {
      uint64_t epoch = 0, event_id = 0;
      in.ReadU64(&epoch);
      in.ReadU64(&event_id);
      snap.epoch_marks.emplace_back(epoch, event_id);
    }
    uint64_t n_standing = 0;
    in.ReadU64(&n_standing);
    for (uint64_t i = 0; i < n_standing && !in.failed(); ++i) {
      StandingSeen s;
      in.ReadString(&s.key);
      in.ReadU64(&s.total_rows);
      uint64_t n_rows = 0;
      in.ReadU64(&n_rows);
      for (uint64_t r = 0; r < n_rows && !in.failed(); ++r) {
        uint32_t width = 0;
        in.ReadU32(&width);
        std::vector<sql::Value> row;
        row.reserve(width);
        for (uint32_t c = 0; c < width; ++c) {
          sql::Value v;
          if (!DecodeValue(&in, &v)) {
            return Status::ParseError("snapshot meta: bad standing row");
          }
          row.push_back(std::move(v));
        }
        s.rows.push_back(std::move(row));
      }
      snap.standing.push_back(std::move(s));
    }
    uint64_t n_streams = 0;
    in.ReadU64(&n_streams);
    for (uint64_t i = 0; i < n_streams && !in.failed(); ++i) {
      std::string stream;
      uint64_t offset = 0;
      in.ReadString(&stream);
      in.ReadU64(&offset);
      snap.stream_offsets.emplace_back(std::move(stream), offset);
    }
    if (in.failed() || in.remaining() != 0) {
      return Status::ParseError("snapshot meta: malformed: " + dir);
    }
  }

  {
    RAPTOR_ASSIGN_OR_RETURN(
        std::string body,
        ReadFileChecked(dir + "/entities.bin", kEntitiesMagic));
    ByteReader in(body);
    uint64_t count = 0;
    in.ReadU64(&count);
    if (count != n_entities) {
      return Status::ParseError("snapshot entities: count mismatch");
    }
    snap.store.entities.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      audit::SystemEntity e;
      if (!DecodeEntity(&in, &e)) {
        return Status::ParseError("snapshot entities: bad record");
      }
      snap.store.entities.push_back(std::move(e));
    }
    if (in.remaining() != 0) {
      return Status::ParseError("snapshot entities: trailing bytes");
    }
  }

  snap.store.events.reserve(n_events);
  for (uint32_t k = 0; k < shards; ++k) {
    RAPTOR_ASSIGN_OR_RETURN(
        std::string body,
        ReadFileChecked(dir + "/" + EventShardName(k), kEventsMagic));
    ByteReader in(body);
    uint32_t shard = 0;
    uint64_t count = 0;
    in.ReadU32(&shard);
    in.ReadU64(&count);
    if (in.failed() || shard != k) {
      return Status::ParseError("snapshot events: shard id mismatch");
    }
    for (uint64_t i = 0; i < count; ++i) {
      audit::SystemEvent ev;
      if (!DecodeEvent(&in, &ev)) {
        return Status::ParseError("snapshot events: bad record");
      }
      snap.store.events.push_back(std::move(ev));
    }
    if (in.remaining() != 0) {
      return Status::ParseError("snapshot events: trailing bytes");
    }
  }
  if (snap.store.events.size() != n_events) {
    return Status::ParseError("snapshot events: count mismatch");
  }
  return snap;
}

}  // namespace raptor::persist
