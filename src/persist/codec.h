// Binary codec shared by the WAL and the snapshot format: explicit
// little-endian fixed-width integers, length-prefixed strings, a
// table-driven CRC-32 for frame/file integrity, and the record encoders
// for the audit data model (entities, events, parsed logs, sql::Values).
//
// Everything decodes through ByteReader, which bounds-checks every read
// and latches a failure flag instead of throwing — torn WAL tails and
// corrupt snapshot shards surface as a clean `false`, never as UB.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "audit/types.h"
#include "common/status.h"
#include "storage/relational/value.h"

namespace raptor::persist {

// ---- little-endian primitives ---------------------------------------------

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutDouble(std::string* out, double v);
/// u32 byte length followed by the raw bytes.
void PutString(std::string* out, std::string_view s);

/// Bounds-checked sequential decoder over a byte buffer. Any failed read
/// latches failed() and makes every later read fail too, so decode loops
/// can check once at the end.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadI64(int64_t* v);
  bool ReadDouble(double* v);
  bool ReadString(std::string* v);

  bool failed() const { return failed_; }
  size_t remaining() const { return data_.size() - pos_; }
  size_t pos() const { return pos_; }

 private:
  bool Take(size_t n, const char** p);

  std::string_view data_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// CRC-32 (IEEE 802.3 polynomial, table-driven).
uint32_t Crc32(std::string_view data);

// ---- audit data model -----------------------------------------------------

void EncodeEntity(const audit::SystemEntity& e, std::string* out);
bool DecodeEntity(ByteReader* in, audit::SystemEntity* e);

void EncodeEvent(const audit::SystemEvent& ev, std::string* out);
bool DecodeEvent(ByteReader* in, audit::SystemEvent* ev);

/// sql::Value with a leading type tag (0 null, 1 int64, 2 double, 3 text).
void EncodeValue(const sql::Value& v, std::string* out);
bool DecodeValue(ByteReader* in, sql::Value* v);

/// A whole parsed log (entity table + event list), the WAL payload for
/// IngestParsedLog batches.
void EncodeParsedLog(const audit::ParsedLog& log, std::string* out);
Result<audit::ParsedLog> DecodeParsedLog(std::string_view data);

}  // namespace raptor::persist
