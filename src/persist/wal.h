// Write-ahead segment log. Every mutation that passes through the hunt
// service's write gate is serialized here BEFORE it applies to the store,
// so a crash between "logged" and "applied" replays the record on restart
// and a crash before "logged" loses nothing that was acknowledged.
//
// On-disk layout (per segment file `wal-<seq>.seg`):
//   header:  "RWALSEG2" magic + u64 segment sequence number
//   records: u32 body length | u32 crc32(body) | body
//   body:    u8 type | string stream | u64 stream_offset | string payload
//
// Segments rotate when the active one exceeds DurabilityOptions::
// segment_max_bytes, and on every checkpoint (the snapshot makes all
// earlier segments dead, so the checkpointer starts a fresh one and
// deletes the rest). Sequence numbers are monotonic across both causes.
//
// Readers tolerate a torn tail — a partially written final record (crash
// mid-append) parses as "end of segment", not corruption; the writer
// truncates it before appending again.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/durability.h"

namespace raptor::persist {

enum class WalRecordType : uint8_t {
  kSyscallBatch = 1,  // audit/jsonl.h-encoded raw syscall records
  kParsedBatch = 2,   // codec.h-encoded ParsedLog
  kFlush = 3,         // carry-over window flush (no payload)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kSyscallBatch;
  /// Source stream this batch came from (e.g. the tailed JSONL path);
  /// empty for direct API ingests.
  std::string stream;
  /// Byte offset of the stream AFTER this batch — restored on Open so a
  /// tail source resumes where the persisted state ends.
  uint64_t stream_offset = 0;
  std::string payload;
};

/// Segment file name for a sequence number (`wal-0000000001.seg`).
std::string WalSegmentName(uint64_t seq);

/// Appender over the active segment. Not thread-safe: the hunt service's
/// write gate already serializes mutations, which is exactly the WAL
/// append order.
class WalWriter {
 public:
  WalWriter(std::string dir, DurabilityOptions options);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Create a fresh segment `seq` and make it active (checkpoint path, or
  /// first open of an empty directory).
  Status StartSegment(uint64_t seq);

  /// Re-open an existing segment for appending, truncating it to
  /// `valid_bytes` first (drops a torn tail record).
  Status OpenExisting(uint64_t seq, uint64_t valid_bytes);

  /// Frame, checksum and append one record; rotates to a new segment
  /// first if the active one is over the size cap.
  Status Append(const WalRecord& record);

  uint64_t active_seq() const { return seq_; }
  uint64_t records_appended() const { return records_appended_; }
  uint64_t bytes_appended() const { return bytes_appended_; }
  uint64_t segments_created() const { return segments_created_; }

 private:
  void Close();
  Status SyncIfConfigured();

  std::string dir_;
  DurabilityOptions options_;
  std::FILE* file_ = nullptr;
  uint64_t seq_ = 0;
  uint64_t active_bytes_ = 0;  // written to the active segment
  uint64_t records_appended_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t segments_created_ = 0;
};

/// Read every intact record of a segment. A torn tail (truncated frame or
/// checksum mismatch on the final record) stops the read cleanly:
/// `truncated` is set and `valid_bytes` reports the byte length of the
/// intact prefix (header + whole records). A bad header or a checksum
/// failure before the tail is a real error.
Status ReadWalSegment(const std::string& path, uint64_t expect_seq,
                      std::vector<WalRecord>* records, uint64_t* valid_bytes,
                      bool* truncated);

}  // namespace raptor::persist
