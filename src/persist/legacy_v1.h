// One-release compatibility shim for the retired v1 snapshot format (the
// old storage/snapshot.h free functions: "raptor-snapshot v1", a
// line-oriented tab-separated dump of a ParsedLog). New code persists
// through persist::Checkpointer; this loader exists only so data written
// by the previous release can be imported once — see
// ThreatRaptor::ImportV1Snapshot — after which the durable store carries
// it forward in the v2 format. Scheduled for removal next release.
#pragma once

#include <string>
#include <string_view>

#include "audit/types.h"
#include "common/status.h"

namespace raptor::persist {

/// Parse a v1 snapshot blob into a ParsedLog. Fails with ParseError on
/// malformed input or an unsupported version tag.
Result<audit::ParsedLog> ParseV1Snapshot(std::string_view data);

/// File convenience wrapper over ParseV1Snapshot.
Result<audit::ParsedLog> LoadV1Snapshot(const std::string& path);

}  // namespace raptor::persist
