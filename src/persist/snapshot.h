// Binary sharded snapshot of the full system state: the store's logical
// state (entity table, visible events, reduction carry-over window, id
// counters), the service's standing-hunt seen-sets, the per-epoch event-id
// watermarks retention needs, and the byte offsets of tailed streams —
// everything required so that restart = load snapshot + replay WAL tail.
//
// Directory layout (one directory per snapshot, `snap-<seq>/`):
//   meta.bin       counters, epoch marks, carry window, standing seen-sets,
//                  stream offsets
//   entities.bin   the full entity table, id-ordered
//   events-<k>.bin event shard k of N: visible events split into N
//                  contiguous id ranges (ranges, not hashes: each shard
//                  stays id-sorted so restore concatenates, never merges)
//
// Every file is CRC-32-trailed; ReadSnapshot verifies before returning.
// Writes go to a temporary directory that the Checkpointer renames into
// place, so a crash mid-snapshot never corrupts the previous one.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "persist/durability.h"
#include "storage/relational/value.h"
#include "storage/store.h"

namespace raptor::persist {

/// A standing hunt's delivered-row memory, keyed by the subscription's
/// identity (dialect + tenant + query text). Restored seen-sets re-arm a
/// resubmitted standing hunt so its post-restart baseline refresh delivers
/// only genuinely-new rows and its accumulated totals continue.
struct StandingSeen {
  std::string key;
  uint64_t total_rows = 0;
  std::vector<std::vector<sql::Value>> rows;
};

/// Everything a checkpoint persists.
struct SystemSnapshot {
  /// Store epoch the snapshot reflects; restart resumes counting from it.
  uint64_t epoch = 0;
  storage::StoreSnapshotState store;
  /// (epoch, last event id visible at that epoch) pairs, newest last —
  /// how the retention policy translates an epoch horizon into an event-id
  /// eviction watermark. Only tracked when retention is on.
  std::vector<std::pair<uint64_t, uint64_t>> epoch_marks;
  std::vector<StandingSeen> standing;
  /// (stream name, bytes consumed) for every tailed source that reported
  /// through the WAL; a restarted tail resumes at its offset.
  std::vector<std::pair<std::string, uint64_t>> stream_offsets;
};

/// Write `snap` as a snapshot directory at `dir` (created; must not
/// exist). `bytes_written` (optional) reports the total payload size.
Status WriteSnapshot(const std::string& dir, const SystemSnapshot& snap,
                     const DurabilityOptions& options,
                     uint64_t* bytes_written);

/// Load and verify a snapshot directory.
Result<SystemSnapshot> ReadSnapshot(const std::string& dir);

}  // namespace raptor::persist
