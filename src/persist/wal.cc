#include "persist/wal.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/strings.h"
#include "persist/codec.h"

namespace raptor::persist {

namespace {

constexpr std::string_view kSegmentMagic = "RWALSEG2";
constexpr size_t kHeaderBytes = 8 + 8;  // magic + seq
constexpr size_t kFrameBytes = 4 + 4;   // body length + crc

std::string EncodeBody(const WalRecord& record) {
  std::string body;
  body.reserve(1 + 4 + record.stream.size() + 8 + 4 + record.payload.size());
  PutU8(&body, static_cast<uint8_t>(record.type));
  PutString(&body, record.stream);
  PutU64(&body, record.stream_offset);
  PutString(&body, record.payload);
  return body;
}

bool DecodeBody(std::string_view body, WalRecord* record) {
  ByteReader in(body);
  uint8_t type = 0;
  in.ReadU8(&type);
  in.ReadString(&record->stream);
  in.ReadU64(&record->stream_offset);
  in.ReadString(&record->payload);
  if (in.failed() || in.remaining() != 0 || type < 1 || type > 3) {
    return false;
  }
  record->type = static_cast<WalRecordType>(type);
  return true;
}

}  // namespace

std::string WalSegmentName(uint64_t seq) {
  return StrFormat("wal-%010llu.seg", static_cast<unsigned long long>(seq));
}

WalWriter::WalWriter(std::string dir, DurabilityOptions options)
    : dir_(std::move(dir)), options_(options) {}

WalWriter::~WalWriter() { Close(); }

void WalWriter::Close() {
  if (file_ == nullptr) return;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

Status WalWriter::SyncIfConfigured() {
  if (std::fflush(file_) != 0) {
    return Status::Internal("WAL flush failed: " + WalSegmentName(seq_));
  }
  if (options_.fsync == FsyncMode::kAlways && fsync(fileno(file_)) != 0) {
    return Status::Internal("WAL fsync failed: " + WalSegmentName(seq_));
  }
  return Status::OK();
}

Status WalWriter::StartSegment(uint64_t seq) {
  Close();
  const std::string path = dir_ + "/" + WalSegmentName(seq);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Internal("cannot create WAL segment: " + path);
  }
  std::string header(kSegmentMagic);
  PutU64(&header, seq);
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    return Status::Internal("cannot write WAL segment header: " + path);
  }
  RAPTOR_RETURN_NOT_OK(SyncIfConfigured());
  seq_ = seq;
  active_bytes_ = header.size();
  ++segments_created_;
  return Status::OK();
}

Status WalWriter::OpenExisting(uint64_t seq, uint64_t valid_bytes) {
  Close();
  const std::string path = dir_ + "/" + WalSegmentName(seq);
  std::error_code ec;
  // Drop a torn tail record before appending over it.
  std::filesystem::resize_file(path, valid_bytes, ec);
  if (ec) {
    return Status::Internal("cannot truncate WAL segment: " + path);
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot open WAL segment: " + path);
  }
  seq_ = seq;
  active_bytes_ = valid_bytes;
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  if (file_ == nullptr) {
    return Status::Internal("WAL writer has no active segment");
  }
  if (active_bytes_ > options_.segment_max_bytes) {
    RAPTOR_RETURN_NOT_OK(StartSegment(seq_ + 1));
  }
  const std::string body = EncodeBody(record);
  std::string frame;
  frame.reserve(kFrameBytes + body.size());
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  PutU32(&frame, Crc32(body));
  frame += body;
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::Internal("WAL append failed: " + WalSegmentName(seq_));
  }
  RAPTOR_RETURN_NOT_OK(SyncIfConfigured());
  active_bytes_ += frame.size();
  ++records_appended_;
  bytes_appended_ += frame.size();
  return Status::OK();
}

Status ReadWalSegment(const std::string& path, uint64_t expect_seq,
                      std::vector<WalRecord>* records, uint64_t* valid_bytes,
                      bool* truncated) {
  if (truncated != nullptr) *truncated = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open WAL segment: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string data = ss.str();

  if (data.size() < kHeaderBytes ||
      std::string_view(data).substr(0, kSegmentMagic.size()) !=
          kSegmentMagic) {
    return Status::ParseError("bad WAL segment header: " + path);
  }
  ByteReader header(std::string_view(data).substr(kSegmentMagic.size(), 8));
  uint64_t seq = 0;
  header.ReadU64(&seq);
  if (seq != expect_seq) {
    return Status::ParseError(
        StrFormat("WAL segment %s claims seq %llu, expected %llu",
                  path.c_str(), static_cast<unsigned long long>(seq),
                  static_cast<unsigned long long>(expect_seq)));
  }

  size_t pos = kHeaderBytes;
  while (pos < data.size()) {
    // A frame that does not fit or fails its checksum is a torn tail:
    // the crash happened mid-append, everything before it is intact.
    if (data.size() - pos < kFrameBytes) break;
    ByteReader frame(std::string_view(data).substr(pos, kFrameBytes));
    uint32_t len = 0, crc = 0;
    frame.ReadU32(&len);
    frame.ReadU32(&crc);
    if (data.size() - pos - kFrameBytes < len) break;
    std::string_view body(data.data() + pos + kFrameBytes, len);
    if (Crc32(body) != crc) break;
    WalRecord record;
    if (!DecodeBody(body, &record)) {
      return Status::ParseError("corrupt WAL record body: " + path);
    }
    records->push_back(std::move(record));
    pos += kFrameBytes + len;
  }
  if (valid_bytes != nullptr) *valid_bytes = pos;
  if (truncated != nullptr) *truncated = pos < data.size();
  return Status::OK();
}

}  // namespace raptor::persist
