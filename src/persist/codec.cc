#include "persist/codec.h"

#include <cstring>

namespace raptor::persist {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool ByteReader::Take(size_t n, const char** p) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool ByteReader::ReadU8(uint8_t* v) {
  const char* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool ByteReader::ReadU32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool ByteReader::ReadU64(uint64_t* v) {
  const char* p = nullptr;
  if (!Take(8, &p)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool ByteReader::ReadI64(int64_t* v) {
  uint64_t u = 0;
  if (!ReadU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool ByteReader::ReadDouble(double* v) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool ByteReader::ReadString(std::string* v) {
  uint32_t len = 0;
  if (!ReadU32(&len)) return false;
  const char* p = nullptr;
  if (!Take(len, &p)) return false;
  v->assign(p, len);
  return true;
}

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const Crc32Table table;
  uint32_t crc = 0xffffffffu;
  for (char ch : data) {
    crc = table.t[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void EncodeEntity(const audit::SystemEntity& e, std::string* out) {
  PutU64(out, e.id);
  PutU8(out, static_cast<uint8_t>(e.type));
  PutString(out, e.name);
  PutString(out, e.path);
  PutI64(out, e.pid);
  PutString(out, e.exename);
  PutString(out, e.cmd);
  PutString(out, e.srcip);
  PutI64(out, e.srcport);
  PutString(out, e.dstip);
  PutI64(out, e.dstport);
  PutString(out, e.protocol);
  PutString(out, e.user);
  PutString(out, e.group);
}

bool DecodeEntity(ByteReader* in, audit::SystemEntity* e) {
  uint8_t type = 0;
  int64_t pid = 0, srcport = 0, dstport = 0;
  in->ReadU64(&e->id);
  in->ReadU8(&type);
  in->ReadString(&e->name);
  in->ReadString(&e->path);
  in->ReadI64(&pid);
  in->ReadString(&e->exename);
  in->ReadString(&e->cmd);
  in->ReadString(&e->srcip);
  in->ReadI64(&srcport);
  in->ReadString(&e->dstip);
  in->ReadI64(&dstport);
  in->ReadString(&e->protocol);
  in->ReadString(&e->user);
  in->ReadString(&e->group);
  if (in->failed() || type > 2) return false;
  e->type = static_cast<audit::EntityType>(type);
  e->pid = pid;
  e->srcport = static_cast<int>(srcport);
  e->dstport = static_cast<int>(dstport);
  return true;
}

void EncodeEvent(const audit::SystemEvent& ev, std::string* out) {
  PutU64(out, ev.id);
  PutU64(out, ev.subject);
  PutU64(out, ev.object);
  PutU8(out, static_cast<uint8_t>(ev.object_type));
  PutU8(out, static_cast<uint8_t>(ev.op));
  PutI64(out, ev.start_time);
  PutI64(out, ev.end_time);
  PutI64(out, ev.amount);
  PutI64(out, ev.failure_code);
}

bool DecodeEvent(ByteReader* in, audit::SystemEvent* ev) {
  uint8_t object_type = 0, op = 0;
  int64_t amount = 0, failure = 0;
  in->ReadU64(&ev->id);
  in->ReadU64(&ev->subject);
  in->ReadU64(&ev->object);
  in->ReadU8(&object_type);
  in->ReadU8(&op);
  in->ReadI64(&ev->start_time);
  in->ReadI64(&ev->end_time);
  in->ReadI64(&amount);
  in->ReadI64(&failure);
  if (in->failed() || object_type > 2 || op >= audit::kNumEventOps) {
    return false;
  }
  ev->object_type = static_cast<audit::EntityType>(object_type);
  ev->op = static_cast<audit::EventOp>(op);
  ev->amount = amount;
  ev->failure_code = static_cast<int>(failure);
  return true;
}

void EncodeValue(const sql::Value& v, std::string* out) {
  if (v.is_null()) {
    PutU8(out, 0);
  } else if (v.is_int()) {
    PutU8(out, 1);
    PutI64(out, v.AsInt());
  } else if (v.is_double()) {
    PutU8(out, 2);
    PutDouble(out, v.AsDouble());
  } else {
    PutU8(out, 3);
    PutString(out, v.AsText());
  }
}

bool DecodeValue(ByteReader* in, sql::Value* v) {
  uint8_t tag = 0;
  if (!in->ReadU8(&tag)) return false;
  switch (tag) {
    case 0:
      *v = sql::Value();
      return true;
    case 1: {
      int64_t i = 0;
      if (!in->ReadI64(&i)) return false;
      *v = sql::Value(i);
      return true;
    }
    case 2: {
      double d = 0;
      if (!in->ReadDouble(&d)) return false;
      *v = sql::Value(d);
      return true;
    }
    case 3: {
      std::string s;
      if (!in->ReadString(&s)) return false;
      *v = sql::Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

void EncodeParsedLog(const audit::ParsedLog& log, std::string* out) {
  PutU64(out, log.entities.size());
  for (const audit::SystemEntity& e : log.entities.entities()) {
    EncodeEntity(e, out);
  }
  PutU64(out, log.events.size());
  for (const audit::SystemEvent& ev : log.events) {
    EncodeEvent(ev, out);
  }
}

Result<audit::ParsedLog> DecodeParsedLog(std::string_view data) {
  ByteReader in(data);
  audit::ParsedLog log;
  uint64_t n_entities = 0;
  if (!in.ReadU64(&n_entities)) {
    return Status::ParseError("parsed-log payload: bad entity count");
  }
  for (uint64_t i = 0; i < n_entities; ++i) {
    audit::SystemEntity e;
    if (!DecodeEntity(&in, &e)) {
      return Status::ParseError("parsed-log payload: bad entity record");
    }
    // Interning in file order reassigns the same dense ids the encoder
    // saw (entity tables are id-ordered), so events decode unchanged.
    log.entities.Intern(std::move(e));
  }
  uint64_t n_events = 0;
  if (!in.ReadU64(&n_events)) {
    return Status::ParseError("parsed-log payload: bad event count");
  }
  for (uint64_t i = 0; i < n_events; ++i) {
    audit::SystemEvent ev;
    if (!DecodeEvent(&in, &ev)) {
      return Status::ParseError("parsed-log payload: bad event record");
    }
    if (ev.subject == 0 || ev.subject > log.entities.size() ||
        ev.object == 0 || ev.object > log.entities.size()) {
      return Status::ParseError(
          "parsed-log payload: event references unknown entity");
    }
    log.events.push_back(std::move(ev));
  }
  if (in.remaining() != 0) {
    return Status::ParseError("parsed-log payload: trailing bytes");
  }
  return log;
}

}  // namespace raptor::persist
