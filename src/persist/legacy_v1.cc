#include "persist/legacy_v1.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/strings.h"

namespace raptor::persist {

namespace {

constexpr std::string_view kV1Header = "raptor-snapshot v1";

Result<std::string> Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) return Status::ParseError("dangling escape");
    switch (s[i]) {
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      case '\\': out.push_back('\\'); break;
      default: return Status::ParseError("unknown escape");
    }
  }
  return out;
}

Result<long long> FieldInt(const std::vector<std::string>& fields, size_t i) {
  if (i >= fields.size()) return Status::ParseError("missing field");
  long long v = 0;
  if (!ParseInt64(fields[i], &v)) {
    return Status::ParseError("bad integer field: " + fields[i]);
  }
  return v;
}

Result<std::string> FieldStr(const std::vector<std::string>& fields,
                             size_t i) {
  if (i >= fields.size()) return Status::ParseError("missing field");
  return Unescape(fields[i]);
}

}  // namespace

Result<audit::ParsedLog> ParseV1Snapshot(std::string_view data) {
  std::vector<std::string> lines = Split(data, '\n');
  size_t li = 0;
  auto next_line = [&]() -> const std::string* {
    return li < lines.size() ? &lines[li++] : nullptr;
  };
  const std::string* header = next_line();
  if (header == nullptr || TrimView(*header) != kV1Header) {
    return Status::ParseError("not a v1 raptor snapshot (bad header)");
  }

  audit::ParsedLog log;
  const std::string* entity_count_line = next_line();
  long long n_entities = 0;
  if (entity_count_line == nullptr ||
      !StartsWith(*entity_count_line, "E ") ||
      !ParseInt64(std::string_view(*entity_count_line).substr(2),
                  &n_entities)) {
    return Status::ParseError("bad entity count line");
  }
  for (long long i = 0; i < n_entities; ++i) {
    const std::string* line = next_line();
    if (line == nullptr) return Status::ParseError("truncated entities");
    std::vector<std::string> f = Split(*line, '\t');
    RAPTOR_ASSIGN_OR_RETURN(long long type_num, FieldInt(f, 0));
    RAPTOR_ASSIGN_OR_RETURN(std::string name, FieldStr(f, 1));
    RAPTOR_ASSIGN_OR_RETURN(std::string exename, FieldStr(f, 2));
    RAPTOR_ASSIGN_OR_RETURN(long long pid, FieldInt(f, 3));
    RAPTOR_ASSIGN_OR_RETURN(std::string cmd, FieldStr(f, 4));
    RAPTOR_ASSIGN_OR_RETURN(std::string srcip, FieldStr(f, 5));
    RAPTOR_ASSIGN_OR_RETURN(long long srcport, FieldInt(f, 6));
    RAPTOR_ASSIGN_OR_RETURN(std::string dstip, FieldStr(f, 7));
    RAPTOR_ASSIGN_OR_RETURN(long long dstport, FieldInt(f, 8));
    RAPTOR_ASSIGN_OR_RETURN(std::string protocol, FieldStr(f, 9));
    RAPTOR_ASSIGN_OR_RETURN(std::string user, FieldStr(f, 10));
    RAPTOR_ASSIGN_OR_RETURN(std::string group, FieldStr(f, 11));
    switch (static_cast<audit::EntityType>(type_num)) {
      case audit::EntityType::kFile:
        log.entities.InternFile(name, user, group);
        break;
      case audit::EntityType::kProcess:
        log.entities.InternProcess(exename, pid, cmd, user, group);
        break;
      case audit::EntityType::kNetwork:
        log.entities.InternNetwork(srcip, static_cast<int>(srcport), dstip,
                                   static_cast<int>(dstport), protocol);
        break;
      default:
        return Status::ParseError("bad entity type");
    }
  }

  const std::string* event_count_line = next_line();
  long long n_events = 0;
  if (event_count_line == nullptr || !StartsWith(*event_count_line, "V ") ||
      !ParseInt64(std::string_view(*event_count_line).substr(2), &n_events)) {
    return Status::ParseError("bad event count line");
  }
  for (long long i = 0; i < n_events; ++i) {
    const std::string* line = next_line();
    if (line == nullptr) return Status::ParseError("truncated events");
    std::vector<std::string> f = Split(*line, '\t');
    audit::SystemEvent ev;
    RAPTOR_ASSIGN_OR_RETURN(long long subject, FieldInt(f, 0));
    RAPTOR_ASSIGN_OR_RETURN(long long object, FieldInt(f, 1));
    RAPTOR_ASSIGN_OR_RETURN(long long op, FieldInt(f, 2));
    RAPTOR_ASSIGN_OR_RETURN(long long start, FieldInt(f, 3));
    RAPTOR_ASSIGN_OR_RETURN(long long end, FieldInt(f, 4));
    RAPTOR_ASSIGN_OR_RETURN(long long amount, FieldInt(f, 5));
    RAPTOR_ASSIGN_OR_RETURN(long long failure, FieldInt(f, 6));
    if (op < 0 || op >= audit::kNumEventOps) {
      return Status::ParseError("bad event op");
    }
    ev.id = static_cast<audit::EventId>(i + 1);
    ev.subject = static_cast<audit::EntityId>(subject);
    ev.object = static_cast<audit::EntityId>(object);
    if (ev.subject == 0 || ev.subject > log.entities.size() ||
        ev.object == 0 || ev.object > log.entities.size()) {
      return Status::ParseError("event references unknown entity");
    }
    ev.op = static_cast<audit::EventOp>(op);
    ev.object_type = log.entities.Get(ev.object).type;
    ev.start_time = start;
    ev.end_time = end;
    ev.amount = amount;
    ev.failure_code = static_cast<int>(failure);
    log.events.push_back(ev);
  }
  return log;
}

Result<audit::ParsedLog> LoadV1Snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseV1Snapshot(ss.str());
}

}  // namespace raptor::persist
