// Durability knobs and observability for the persistence subsystem.
//
// One struct holds every persistence decision — where the data directory
// lives, when WAL segments rotate, how often snapshots are cut, how far
// back the store remembers — nested in HuntServiceOptions (the service is
// the write gate, so it is also where durability is configured) instead of
// scattering loose fields across StoreOptions and the CLI.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace raptor::persist {

/// When WAL appends and snapshot shards reach stable storage.
enum class FsyncMode {
  /// Buffered writes only (flushed to the OS, not fsynced). Survives
  /// process crashes — the common failure — but not power loss.
  kNone = 0,
  /// fsync the active segment after every appended record and every
  /// snapshot file after it is written.
  kAlways = 1,
};

/// All persistence knobs in one place. An empty `data_dir` means the store
/// is purely in-memory (the pre-durability behavior); everything else is
/// ignored in that case.
struct DurabilityOptions {
  /// Directory holding the WAL segments, snapshots and the CURRENT
  /// manifest. Created on Open if missing. Empty: durability off.
  std::string data_dir;

  /// The active WAL segment rotates once it exceeds this many bytes
  /// (checked between records; a single huge record still lands whole).
  size_t segment_max_bytes = 8u << 20;

  /// Cut a snapshot automatically every N successful ingest epochs.
  /// 0: only explicit Checkpoint()/Close() calls snapshot.
  uint64_t snapshot_interval_epochs = 0;

  /// Retention horizon: at each checkpoint, evict events whose epoch is
  /// more than this many epochs behind the current one (bounded-memory
  /// mode). 0: keep everything forever.
  uint64_t retention_horizon_epochs = 0;

  /// Number of event shard files a snapshot is split into.
  uint32_t snapshot_shards = 4;

  FsyncMode fsync = FsyncMode::kNone;
};

/// Counters exposed by the Checkpointer (cumulative since Open).
struct DurabilityStats {
  // Write-ahead log.
  uint64_t wal_records = 0;        // records appended this run
  uint64_t wal_bytes = 0;          // framed bytes appended this run
  uint64_t wal_segments = 0;       // segments created this run
  // Snapshots.
  uint64_t checkpoints = 0;        // snapshots written this run
  uint64_t snapshot_bytes = 0;     // bytes of the last snapshot written
  // Recovery (filled by Open).
  bool restored = false;           // a snapshot was loaded
  uint64_t restored_epoch = 0;     // epoch of the loaded snapshot
  uint64_t replayed_records = 0;   // WAL records replayed after restore
  bool wal_tail_truncated = false; // a torn final record was discarded
  // Retention.
  uint64_t events_evicted = 0;     // events removed by retention
  uint64_t epochs_evicted = 0;     // epochs aged out by retention
};

}  // namespace raptor::persist
