// Checkpointer: the durable store's recovery and checkpoint protocol.
//
// A data directory holds:
//   CURRENT          two-line manifest: active snapshot dir (or "-") and
//                    the minimum live WAL segment sequence number
//   snap-<seq>/      snapshot directories (persist/snapshot.h layout)
//   wal-<seq>.seg    WAL segments (persist/wal.h layout)
//
// Open():   read CURRENT, load the named snapshot (if any), validate the
//           live segments, truncate a torn tail, and re-arm the writer on
//           the newest segment. ReplayTail() then feeds every intact
//           post-snapshot record back to the caller.
// Checkpoint: WriteCheckpoint() writes the new snapshot to a temp dir,
//           renames it into place, rotates the WAL onto a fresh segment,
//           publishes both through CURRENT (tmp + atomic rename), and only
//           then deletes the superseded snapshot and segments. A crash at
//           any point leaves either the old state or the new state fully
//           intact — never a mix.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/durability.h"
#include "persist/snapshot.h"
#include "persist/wal.h"

namespace raptor::persist {

class Checkpointer {
 public:
  /// Open (creating if needed) the data directory and recover its state.
  /// Precondition: options.data_dir is non-empty.
  static Result<std::unique_ptr<Checkpointer>> Open(
      const DurabilityOptions& options);

  /// A snapshot was recovered; TakeRestoredSnapshot() moves it out.
  bool has_snapshot() const { return restored_.has_value(); }
  SystemSnapshot TakeRestoredSnapshot();

  /// Feed every intact WAL record newer than the snapshot to `apply`, in
  /// append order. Call once, after restoring the snapshot and before the
  /// first new append.
  Status ReplayTail(const std::function<Status(const WalRecord&)>& apply);

  /// The write-ahead appender the hunt service logs mutations through.
  WalWriter* wal() { return wal_.get(); }

  /// Publish `snap` as the new durable state (see the protocol above).
  Status WriteCheckpoint(const SystemSnapshot& snap);

  DurabilityStats stats() const;

 private:
  explicit Checkpointer(DurabilityOptions options);

  Status Recover();
  Status PublishCurrent(const std::string& snapshot_name, uint64_t wal_min);
  /// Delete snapshots other than `keep_snapshot` and segments with
  /// seq < wal_min. Best-effort: leftovers are re-pruned next checkpoint.
  void Prune(const std::string& keep_snapshot, uint64_t wal_min);

  DurabilityOptions options_;
  std::optional<SystemSnapshot> restored_;
  std::string current_snapshot_;  // dir name, empty if none
  uint64_t wal_min_seq_ = 1;
  /// Live segments found at Open, ascending seq; replay reads them back.
  std::vector<uint64_t> tail_segments_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t next_snapshot_seq_ = 1;
  DurabilityStats stats_;
};

}  // namespace raptor::persist
