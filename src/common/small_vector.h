// Vector with inline storage for the first N elements, spilling to the heap
// only past that capacity. Binding frames in the query matchers hold per-row
// state (bound node/edge slots, the relationship-uniqueness stack) whose
// size is almost always a handful of entries, so inline storage makes frame
// setup and reset allocation-free on the hot path.
//
// Restricted to trivially copyable element types (ids, small PODs): the
// implementation copies raw elements between the inline buffer and the heap
// on spill, and copies the whole inline buffer in the defaulted copy ops.
#pragma once

#include <cstddef>
#include <type_traits>
#include <vector>

namespace raptor {

template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector requires trivially copyable elements");
  static_assert(N > 0, "SmallVector requires non-zero inline capacity");

 public:
  SmallVector() = default;
  SmallVector(size_t n, const T& value) { assign(n, value); }

  void push_back(const T& value) {
    if (!spilled_ && size_ < N) {
      inline_[size_++] = value;
      return;
    }
    Spill();
    heap_.push_back(value);
    ++size_;
  }

  void pop_back() {
    --size_;
    if (spilled_) heap_.pop_back();
  }

  void assign(size_t n, const T& value) {
    clear();
    if (n <= N) {
      for (size_t i = 0; i < n; ++i) inline_[i] = value;
    } else {
      heap_.assign(n, value);
      spilled_ = true;
    }
    size_ = n;
  }

  void clear() {
    size_ = 0;
    heap_.clear();
    spilled_ = false;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// True when the contents live on the heap (exposed for tests).
  bool spilled() const { return spilled_; }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  T* data() { return spilled_ ? heap_.data() : inline_; }
  const T* data() const { return spilled_ ? heap_.data() : inline_; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

 private:
  void Spill() {
    if (spilled_) return;
    heap_.assign(inline_, inline_ + size_);
    spilled_ = true;
  }

  size_t size_ = 0;
  bool spilled_ = false;  // sticky until clear()/assign()
  T inline_[N] = {};
  std::vector<T> heap_;
};

template <typename T, size_t N>
bool Contains(const SmallVector<T, N>& v, const T& value) {
  for (const T& x : v) {
    if (x == value) return true;
  }
  return false;
}

}  // namespace raptor
