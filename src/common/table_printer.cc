#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"

namespace raptor {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatSeconds(double seconds) {
  return StrFormat("%.2f", seconds);
}

std::string FormatPercent(double ratio) {
  return StrFormat("%.2f%%", ratio * 100.0);
}

}  // namespace raptor
