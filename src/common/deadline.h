// DeadlinePoller: cheap cooperative deadline checks inside hot scan loops.
//
// The storage executors poll a cancellation flag at every seed / base-row
// visit; polling a deadline the same way would put a clock read on the hot
// path. The poller amortizes it: Expired() reads the clock only every
// kStride calls (a relaxed counter otherwise) and latches the result, so a
// scan stops within one stride of the deadline passing — microseconds of
// overshoot instead of the whole remaining scan.
#pragma once

#include <chrono>
#include <optional>

namespace raptor {

class DeadlinePoller {
 public:
  DeadlinePoller() = default;
  explicit DeadlinePoller(
      std::optional<std::chrono::steady_clock::time_point> deadline)
      : deadline_(deadline) {}

  bool armed() const { return deadline_.has_value(); }

  /// True once the deadline has passed (sticky). Reads the clock on the
  /// first call and then every kStride calls.
  bool Expired() {
    if (!deadline_.has_value() || expired_) return expired_;
    if (calls_++ % kStride != 0) return false;
    expired_ = std::chrono::steady_clock::now() > *deadline_;
    return expired_;
  }

  /// Unamortized check for cold paths (query boundaries, final verdicts).
  bool ExpiredNow() const {
    return deadline_.has_value() &&
           std::chrono::steady_clock::now() > *deadline_;
  }

 private:
  static constexpr unsigned kStride = 1024;

  std::optional<std::chrono::steady_clock::time_point> deadline_;
  unsigned calls_ = 0;
  bool expired_ = false;
};

}  // namespace raptor
