// Wall-clock stopwatch used by the benchmark harnesses to time pipeline
// stages (Table VII) and query execution rounds (Tables VIII/IX).
#pragma once

#include <chrono>

namespace raptor {

class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace raptor
