// Deterministic pseudo-random number generation (SplitMix64). All synthetic
// workloads, benign-noise generators and property tests seed from here so
// that every test and benchmark run is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace raptor {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Pick a uniformly random element. Precondition: non-empty.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  /// Random lowercase identifier of the given length.
  std::string Identifier(size_t len) {
    static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz";
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) s.push_back(kAlpha[Uniform(26)]);
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace raptor
