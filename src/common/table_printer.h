// ASCII table rendering for benchmark harness output. Every bench binary
// reproduces one of the paper's tables; this prints them in an aligned,
// diffable format.
#pragma once

#include <string>
#include <vector>

namespace raptor {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Render the whole table with a header separator line.
  std::string ToString() const;

  /// Render and write to stdout.
  void Print() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds with 2 decimal places (Tables VII/VIII/IX convention).
std::string FormatSeconds(double seconds);

/// Format a ratio as a percentage with 2 decimal places, e.g. "96.64%".
std::string FormatPercent(double ratio);

}  // namespace raptor
