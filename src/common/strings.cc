#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace raptor {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    for (; j < needle.size(); ++j) {
      if (std::tolower(static_cast<unsigned char>(haystack[i + j])) !=
          std::tolower(static_cast<unsigned char>(needle[j]))) {
        break;
      }
    }
    if (j == needle.size()) return true;
  }
  return false;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    // The wildcard branch must run before the literal branch: a '%' in the
    // pattern is always a wildcard, even when the text holds a literal '%'.
    if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (p < pattern.size() &&
               (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool ParseInt64(std::string_view s, long long* out) {
  s = TrimView(s);
  if (s.empty()) return false;
  char buf[32];
  if (s.size() >= sizeof(buf)) return false;
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  long long v = std::strtoll(buf, &end, 10);
  if (end != buf + s.size()) return false;
  *out = v;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace raptor
