// Levenshtein edit distance and derived string similarity, used by the
// fuzzy search mode for node-level alignment (Sec III-F of the paper) and
// by the IOC scan-and-merge step of the extraction pipeline (Step 8).
#pragma once

#include <string_view>

namespace raptor {

/// Classic Levenshtein edit distance (insert/delete/substitute, unit cost).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Banded variant: returns early with max_distance+1 once the distance is
/// provably greater than `max_distance`. Useful for threshold checks on
/// large candidate sets.
size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t max_distance);

/// Normalized similarity in [0,1]: 1 - distance / max(len(a), len(b)).
/// Two empty strings are defined to have similarity 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

}  // namespace raptor
