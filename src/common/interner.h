// Append-only string interner mapping distinct strings to dense uint32 ids.
// Interned ids turn hot-path string comparisons (node labels, edge types,
// property names) into integer compares, and let adjacency and index
// structures key on small ints instead of heap strings.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace raptor {

/// Sentinel returned by lookups of never-interned strings.
constexpr uint32_t kNoSymbol = static_cast<uint32_t>(-1);

/// Transparent hasher so unordered containers keyed by std::string accept
/// std::string_view probes without allocating.
struct StringViewHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

class StringInterner {
 public:
  /// Id of `s`, interning it on first sight.
  uint32_t Intern(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(names_.size());
    auto [jt, inserted] = ids_.emplace(std::string(s), id);
    (void)inserted;
    // Map nodes are stable, so the stored key can back the id->name view.
    names_.push_back(&jt->first);
    return id;
  }

  /// Id of `s`, or kNoSymbol when never interned. Never allocates.
  uint32_t Lookup(std::string_view s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? kNoSymbol : it->second;
  }

  /// Precondition: id came from Intern().
  std::string_view Name(uint32_t id) const { return *names_[id]; }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, uint32_t, StringViewHash, std::equal_to<>>
      ids_;
  std::vector<const std::string*> names_;
};

}  // namespace raptor
