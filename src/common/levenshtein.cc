#include "common/levenshtein.h"

#include <algorithm>
#include <vector>

namespace raptor {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cur = row[i];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, prev + cost});
      prev = cur;
    }
  }
  return row[a.size()];
}

size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t max_distance) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > max_distance) return max_distance + 1;
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t prev = row[0];
    row[0] = j;
    size_t row_min = row[0];
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t cur = row[i];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, prev + cost});
      prev = cur;
      row_min = std::min(row_min, row[i]);
    }
    if (row_min > max_distance) return max_distance + 1;
  }
  return row[a.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

}  // namespace raptor
