// Shared hash utilities for composite keys (value rows, projected result
// rows): one combine formula, so every row-level hash in the codebase has
// the same distribution and fixes land everywhere at once.
#pragma once

#include <cstddef>

namespace raptor {

/// Boost-style hash combine: folds `h` into `seed`.
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace raptor
