// String utilities shared across the library: splitting, trimming, case
// mapping, SQL-LIKE wildcard matching, and small formatting helpers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace raptor {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Split `s` on any whitespace run, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Join `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading/trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// SQL LIKE matching where '%' matches any character run and '_' matches
/// one character. Matching is case-sensitive (PostgreSQL LIKE semantics).
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Replace all occurrences of `from` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// True if every character is an ASCII digit (and s is non-empty).
bool IsAllDigits(std::string_view s);

/// Parse a signed 64-bit integer; returns false on any non-numeric input.
bool ParseInt64(std::string_view s, long long* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace raptor
