// Status / Result<T>: exception-free error handling used across the library.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a Result<T> carrying either a value or a Status). Errors carry a code
// and a human-readable message; callers either handle them or propagate with
// RAPTOR_RETURN_NOT_OK.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace raptor {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kTypeError,
  kUnsupported,
  kInternal,
  kTimeout,
  kCancelled,
  kUnavailable,
};

/// Lightweight error-or-success value returned by fallible operations.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode c) {
    switch (c) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kParseError: return "ParseError";
      case StatusCode::kTypeError: return "TypeError";
      case StatusCode::kUnsupported: return "Unsupported";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kTimeout: return "Timeout";
      case StatusCode::kCancelled: return "Cancelled";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Value-or-error: holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {     // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Asserts in debug builds.
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

}  // namespace raptor

/// Propagate a non-OK Status to the caller.
#define RAPTOR_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::raptor::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Assign a Result's value or propagate its Status.
#define RAPTOR_ASSIGN_OR_RETURN(lhs, expr)    \
  auto RAPTOR_CONCAT_(_res_, __LINE__) = (expr);                    \
  if (!RAPTOR_CONCAT_(_res_, __LINE__).ok())                        \
    return RAPTOR_CONCAT_(_res_, __LINE__).status();                \
  lhs = std::move(RAPTOR_CONCAT_(_res_, __LINE__)).value()

#define RAPTOR_CONCAT_IMPL_(a, b) a##b
#define RAPTOR_CONCAT_(a, b) RAPTOR_CONCAT_IMPL_(a, b)
