// Small fixed worker pool backing shard-parallel query execution.
//
// Both query executors fan seed/scan iteration out over storage shards with
// ParallelFor: the calling thread always participates (it claims indices
// from the same atomic counter as the helpers), so a busy or empty pool
// degrades to inline execution instead of deadlocking — including nested
// ParallelFor calls issued from inside a pool worker. Helper jobs hold the
// loop state through a shared_ptr, so stragglers that wake up after every
// index has been claimed exit without touching freed memory.
//
// The process-wide pool (ThreadPool::Shared()) is sized once from
// std::thread::hardware_concurrency(), clamped to [2, 8] so that machines
// reporting one core still exercise real cross-thread execution in tests;
// RAPTOR_POOL_THREADS overrides the size (0 forces inline execution, the
// serial baseline used by benchmarks).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace raptor {

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads) {
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { Loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Run fn(0..n-1), distributing indices over at most `max_workers`
  /// threads (the caller plus up to max_workers-1 pool helpers). Blocks
  /// until every index has completed. fn must be safe to invoke
  /// concurrently from distinct threads with distinct indices.
  void ParallelFor(size_t n, size_t max_workers,
                   std::function<void(size_t)> fn) {
    if (n == 0) return;
    size_t helpers =
        std::min({max_workers > 0 ? max_workers - 1 : 0, workers_.size(),
                  n - 1});
    if (helpers == 0) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    auto state = std::make_shared<LoopState>();
    state->n = n;
    state->fn = std::move(fn);
    for (size_t h = 0; h < helpers; ++h) {
      Submit([state] { Drain(*state); });
    }
    Drain(*state);
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] { return state->done.load() == state->n; });
  }

  /// ParallelFor with no worker cap beyond the pool size.
  void ParallelFor(size_t n, std::function<void(size_t)> fn) {
    ParallelFor(n, workers_.size() + 1, std::move(fn));
  }

  /// Process-wide pool shared by all query executors.
  static ThreadPool& Shared() {
    static ThreadPool pool(DefaultThreadCount());
    return pool;
  }

 private:
  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n = 0;
    std::function<void(size_t)> fn;
    std::mutex mu;
    std::condition_variable cv;
  };

  static void Drain(LoopState& state) {
    for (;;) {
      size_t i = state.next.fetch_add(1);
      if (i >= state.n) return;
      state.fn(i);
      if (state.done.fetch_add(1) + 1 == state.n) {
        // Empty critical section pairs with the waiter's condition check.
        { std::lock_guard<std::mutex> lock(state.mu); }
        state.cv.notify_all();
      }
    }
  }

  static size_t DefaultThreadCount() {
    if (const char* env = std::getenv("RAPTOR_POOL_THREADS")) {
      long v = std::atol(env);
      if (v >= 0) return std::min<long>(v, 64);
    }
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 2;
    return std::clamp<size_t>(hw, 2, 8);
  }

  void Submit(std::function<void()> job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.push_back(std::move(job));
    }
    cv_.notify_one();
  }

  void Loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stop_ set and queue drained
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      job();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  bool stop_ = false;
};

/// Work-stealing deques for morsel-driven execution. The item domain is a
/// dense index range [0, items); every index is placed up front, split into
/// one contiguous interval per worker. A worker pops from the *front* of
/// its own interval and, once drained, steals single items from the *back*
/// of a victim's, scanning victims from a per-worker pseudo-random start so
/// concurrent thieves spread out instead of convoying on one queue. Because
/// nothing is ever re-enqueued, a full empty scan means global completion.
///
/// Consumers process item k in whatever order the deques produce, but merge
/// per-item results by index — so the merged output is independent of the
/// steal schedule.
class WorkStealingQueues {
 public:
  static constexpr size_t kDone = static_cast<size_t>(-1);

  WorkStealingQueues(size_t items, size_t workers)
      : queues_(std::max<size_t>(workers, 1)) {
    size_t w = queues_.size();
    for (size_t i = 0; i < w; ++i) {
      queues_[i].lo = items * i / w;
      queues_[i].hi = items * (i + 1) / w;
    }
  }

  WorkStealingQueues(const WorkStealingQueues&) = delete;
  WorkStealingQueues& operator=(const WorkStealingQueues&) = delete;

  /// Next item index for worker `w` (kDone when every deque is empty).
  /// `*stolen` reports whether the item came from a victim's deque.
  size_t Next(size_t w, bool* stolen) {
    {
      std::lock_guard<std::mutex> lock(queues_[w].mu);
      if (queues_[w].lo < queues_[w].hi) {
        *stolen = false;
        return queues_[w].lo++;
      }
    }
    size_t n = queues_.size();
    size_t start = (w * 0x9e3779b9u + 1) % n;  // deterministic mixed start
    for (size_t k = 0; k < n; ++k) {
      size_t v = (start + k) % n;
      if (v == w) continue;
      std::lock_guard<std::mutex> lock(queues_[v].mu);
      if (queues_[v].lo < queues_[v].hi) {
        *stolen = true;
        return --queues_[v].hi;
      }
    }
    return kDone;
  }

 private:
  // One mutex per deque: own pops and steals are both O(1) critical
  // sections; padding keeps the hot lo/hi words off shared cache lines.
  struct alignas(64) Queue {
    std::mutex mu;
    size_t lo = 0;
    size_t hi = 0;
  };

  std::vector<Queue> queues_;
};

}  // namespace raptor
