// General-purpose Open Information Extraction baselines for the Table V
// comparison (RQ1). These substitute Stanford Open IE and Open IE 5: both
// extract open-domain (subject, relation, object) triples from arbitrary
// text with no security-domain specialization, which is precisely why their
// IOC entity/relation scores collapse on OSCTI text.
//
//  * ClauseOpenIe ("Stanford-style"): dependency-clause based — for every
//    verb it emits triples over its subject and each object/prepositional
//    argument, with noun-phrase arguments.
//  * PatternOpenIe ("Open IE 5-style"): exhaustive pattern-window based —
//    enumerates candidate argument pairs around every verb within a token
//    window and keeps all plausible combinations, trading (much) more work
//    for marginally different coverage.
//
// Both can optionally run behind IOC Protection (replace IOCs with a dummy
// word, restore into the extracted arguments), reproducing the
// "+ IOC Protection" rows of Table V.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace raptor::openie {

struct OpenTriple {
  std::string arg1;
  std::string relation;  // verb (surface form, lower-cased)
  std::string arg2;
};

struct OpenIeResult {
  std::vector<OpenTriple> triples;
  /// All distinct argument phrases (the baseline's "entities" for RQ1).
  std::vector<std::string> arguments;
};

struct OpenIeOptions {
  bool ioc_protection = false;
};

class ClauseOpenIe {
 public:
  explicit ClauseOpenIe(OpenIeOptions options = {}) : options_(options) {}
  OpenIeResult Extract(std::string_view document) const;

 private:
  OpenIeOptions options_;
};

class PatternOpenIe {
 public:
  explicit PatternOpenIe(OpenIeOptions options = {}) : options_(options) {}
  OpenIeResult Extract(std::string_view document) const;

 private:
  OpenIeOptions options_;
};

}  // namespace raptor::openie
