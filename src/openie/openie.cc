#include "openie/openie.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "nlp/depparse.h"
#include "nlp/pos.h"
#include "nlp/protect.h"
#include "nlp/segment.h"
#include "nlp/tokenizer.h"

namespace raptor::openie {

namespace {

using nlp::DepTree;
using nlp::Pos;

bool IsNominalPos(Pos pos) {
  return pos == Pos::kNoun || pos == Pos::kPropn || pos == Pos::kPron ||
         pos == Pos::kNum;
}

/// Surface text of the noun phrase containing node `head`: the contiguous
/// run of determiners/adjectives/nominals around it. Dummy words restore to
/// their original IOC text via `ioc_text` (empty entries = not an IOC).
std::string PhraseOf(const DepTree& tree, int head,
                     const std::vector<std::string>& ioc_text) {
  int lo = head, hi = head;
  auto extendable = [&](int i) {
    Pos p = tree.node(i).pos;
    return p == Pos::kDet || p == Pos::kAdj || IsNominalPos(p);
  };
  while (lo > 0 && extendable(lo - 1)) --lo;
  while (hi + 1 < static_cast<int>(tree.size()) && extendable(hi + 1)) ++hi;
  std::vector<std::string> words;
  for (int i = lo; i <= hi; ++i) {
    words.push_back(ioc_text[i].empty() ? tree.node(i).text : ioc_text[i]);
  }
  return Join(words, " ");
}

struct ParsedSentence {
  DepTree tree;
  std::vector<std::string> ioc_text;  // per node; empty = not a dummy
};

/// Shared front half of both baselines: (optionally protected) blocks ->
/// sentences -> tagged parses, with dummy-word restoration bookkeeping.
std::vector<ParsedSentence> ParseDocument(std::string_view document,
                                          bool protect) {
  std::vector<ParsedSentence> out;
  for (const nlp::Span& block : nlp::SegmentBlocks(document)) {
    nlp::ProtectedText pt;
    std::string_view working = block.text;
    if (protect) {
      pt = nlp::ProtectIocs(block.text);
      working = pt.text;
    }
    for (const nlp::Span& sentence : nlp::SegmentSentences(working)) {
      std::vector<nlp::Token> tokens = nlp::Tokenize(sentence.text);
      std::vector<Pos> tags = nlp::TagTokens(tokens);
      ParsedSentence ps;
      ps.tree = nlp::ParseDependency(tokens, tags);
      ps.ioc_text.assign(ps.tree.size(), "");
      if (protect) {
        for (size_t i = 0; i < ps.tree.size(); ++i) {
          const nlp::Replacement* rep =
              pt.FindAt(sentence.begin + ps.tree.node(i).begin);
          if (rep != nullptr && ps.tree.node(i).text == nlp::kDummyWord) {
            ps.ioc_text[i] = rep->ioc.text;
          }
        }
      }
      out.push_back(std::move(ps));
    }
  }
  return out;
}

void Finalize(OpenIeResult* result) {
  std::set<std::string> args;
  std::set<std::string> seen_triples;
  std::vector<OpenTriple> unique;
  for (OpenTriple& t : result->triples) {
    std::string key = t.arg1 + "\x1f" + t.relation + "\x1f" + t.arg2;
    if (!seen_triples.insert(key).second) continue;
    args.insert(t.arg1);
    args.insert(t.arg2);
    unique.push_back(std::move(t));
  }
  result->triples = std::move(unique);
  result->arguments.assign(args.begin(), args.end());
}

}  // namespace

OpenIeResult ClauseOpenIe::Extract(std::string_view document) const {
  OpenIeResult result;
  for (const ParsedSentence& ps :
       ParseDocument(document, options_.ioc_protection)) {
    const DepTree& t = ps.tree;
    for (size_t v = 0; v < t.size(); ++v) {
      if (t.node(v).pos != Pos::kVerb) continue;
      // Subject: nsubj/nsubjpass child, else inherit through conj/xcomp.
      int subj = -1;
      for (size_t c = 0; c < t.size(); ++c) {
        if (t.node(c).head == static_cast<int>(v) &&
            (t.node(c).deprel == "nsubj" || t.node(c).deprel == "nsubjpass")) {
          subj = static_cast<int>(c);
        }
      }
      if (subj < 0) {
        int cur = t.node(v).head;
        size_t guard = 0;
        while (cur >= 0 && guard++ < t.size()) {
          for (size_t c = 0; c < t.size(); ++c) {
            if (t.node(c).head == cur && (t.node(c).deprel == "nsubj" ||
                                          t.node(c).deprel == "nsubjpass")) {
              subj = static_cast<int>(c);
            }
          }
          if (subj >= 0) break;
          cur = t.node(cur).head;
        }
      }
      if (subj < 0) continue;
      // Objects: dobj children and pobj grandchildren through preps.
      std::vector<std::pair<int, std::string>> objects;  // node, relation
      std::string verb = ToLower(t.node(v).text);
      for (size_t c = 0; c < t.size(); ++c) {
        if (t.node(c).head != static_cast<int>(v)) continue;
        if (t.node(c).deprel == "dobj") {
          objects.emplace_back(static_cast<int>(c), verb);
        } else if (t.node(c).deprel == "prep" || t.node(c).deprel == "agent") {
          for (size_t g = 0; g < t.size(); ++g) {
            if (t.node(g).head == static_cast<int>(c) &&
                t.node(g).deprel == "pobj") {
              objects.emplace_back(static_cast<int>(g),
                                   verb + " " + ToLower(t.node(c).text));
            }
          }
        }
      }
      for (const auto& [obj, rel] : objects) {
        OpenTriple triple;
        triple.arg1 = PhraseOf(t, subj, ps.ioc_text);
        triple.relation = rel;
        triple.arg2 = PhraseOf(t, obj, ps.ioc_text);
        result.triples.push_back(std::move(triple));
      }
    }
  }
  Finalize(&result);
  return result;
}

OpenIeResult PatternOpenIe::Extract(std::string_view document) const {
  OpenIeResult result;
  constexpr int kWindow = 8;
  for (const ParsedSentence& ps :
       ParseDocument(document, options_.ioc_protection)) {
    const DepTree& t = ps.tree;
    int n = static_cast<int>(t.size());
    // Exhaustive verb-centred window enumeration: every nominal pair that
    // brackets a verb within the window yields a candidate triple. This is
    // deliberately the heavyweight strategy (Open IE 5 is the slowest
    // system in Table VII).
    for (int v = 0; v < n; ++v) {
      if (t.node(v).pos != Pos::kVerb) continue;
      std::string verb = ToLower(t.node(v).text);
      for (int i = std::max(0, v - kWindow); i < v; ++i) {
        if (!IsNominalPos(t.node(i).pos)) continue;
        for (int j = v + 1; j <= std::min(n - 1, v + kWindow); ++j) {
          if (!IsNominalPos(t.node(j).pos)) continue;
          // Plausibility: the pair must be connected through the verb in
          // the tree (any of the three on one path to root through v).
          int lca = t.Lca(i, j);
          bool connected = lca == v;
          if (!connected) {
            for (int node : t.PathToRoot(i)) {
              if (node == v) connected = true;
            }
            for (int node : t.PathToRoot(j)) {
              if (node == v) connected = true;
            }
          }
          if (!connected) continue;
          OpenTriple triple;
          triple.arg1 = PhraseOf(t, i, ps.ioc_text);
          triple.relation = verb;
          triple.arg2 = PhraseOf(t, j, ps.ioc_text);
          result.triples.push_back(std::move(triple));
        }
      }
    }
  }
  Finalize(&result);
  return result;
}

}  // namespace raptor::openie
