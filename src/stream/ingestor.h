// StreamIngestor: the continuous-hunting ingest worker.
//
// Owns one background thread that drains an EventStream and applies each
// non-empty batch through the caller's apply callback — in the standard
// wiring, ThreatRaptor::IngestSyscalls, which parses the records, reduces
// them (with the cross-batch carry-over window), and appends to the store
// under HuntService's epoch gate. Every applied batch bumps the store
// epoch and triggers the registered standing hunts, so attaching an
// ingestor turns a loaded store into a monitored one:
//
//   stream::JsonlTailSource source("/var/log/audit.jsonl");
//   stream::StreamIngestor ingestor(&source,
//       [&](const auto& recs) { return tr.IngestSyscalls(recs); },
//       {.finish = [&] { return tr.FlushIngest(); }});
//   ingestor.Start();
//   ... SubmitStanding hunts fire as the log grows ...
//   ingestor.Stop();  // or WaitEnd() for finite captures
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "audit/syscall.h"
#include "common/status.h"
#include "stream/event_stream.h"

namespace raptor::obs {
class MetricsRegistry;
}  // namespace raptor::obs

namespace raptor::stream {

/// Applies one raw-record batch to the store (parse + reduce + append,
/// typically under the hunt service's epoch gate).
using ApplyBatchFn =
    std::function<Status(const std::vector<audit::SyscallRecord>&)>;

struct IngestorOptions {
  /// Pause between polls that returned no records (live tails); Stop()
  /// interrupts it.
  long long idle_wait_micros = 10'000;
  /// Treat a live source as ended after this long without new records
  /// (<0: tail forever until Stop). Lets the CLI follow a file that stops
  /// growing without hanging.
  long long idle_give_up_micros = -1;
  /// Run once the stream ends (end_of_stream or idle give-up): e.g.
  /// ThreatRaptor::FlushIngest to store the carry-over window's tail.
  std::function<Status()> finish;
};

struct IngestorStats {
  size_t polls = 0;
  size_t batches = 0;   // non-empty batches applied
  size_t records = 0;   // raw records applied
  bool ended = false;   // stream ended (and finish ran)
  Status error;         // first terminal error (poll or apply), if any
};

class StreamIngestor {
 public:
  /// `source` and everything `apply` touches must outlive the ingestor.
  StreamIngestor(EventStream* source, ApplyBatchFn apply,
                 IngestorOptions options = {});

  /// Stops and joins.
  ~StreamIngestor();

  StreamIngestor(const StreamIngestor&) = delete;
  StreamIngestor& operator=(const StreamIngestor&) = delete;

  /// Launch the worker. Call once.
  void Start();

  /// Ask the worker to stop after its current batch, then join it. The
  /// finish hook does NOT run (the stream did not end); safe to call
  /// twice or without Start.
  void Stop();

  /// Block until the stream ends or a terminal error (true), or until
  /// `timeout_micros` passes (false; <0 waits forever).
  bool WaitEnd(long long timeout_micros = -1);

  IngestorStats stats() const;

  /// Export the ingest-side telemetry into `registry`:
  /// raptor_stream_{polls,batches,records}_total counters plus
  /// raptor_stream_{ended,errored} gauges, so a monitored deployment's
  /// scrape shows tail progress next to the service's epoch counters.
  void CollectMetrics(obs::MetricsRegistry* registry) const;

 private:
  void Loop();

  EventStream* source_;
  ApplyBatchFn apply_;
  IngestorOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  IngestorStats stats_;
  bool stop_ = false;
  bool done_ = false;  // worker finished (ended, errored, or stopped)
  std::thread worker_;
};

}  // namespace raptor::stream
