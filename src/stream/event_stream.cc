#include "stream/event_stream.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "audit/jsonl.h"

namespace raptor::stream {

// ---- JsonlTailSource -------------------------------------------------------

Result<StreamBatch> JsonlTailSource::Poll() {
  StreamBatch batch;
  if (done_) {
    batch.end_of_stream = true;
    return batch;
  }

  std::string chunk;
  {
    std::ifstream in(path_, std::ios::binary);
    // A missing (not yet created) file is simply "no data yet".
    if (in) {
      in.seekg(0, std::ios::end);
      auto size = static_cast<std::streamoff>(in.tellg());
      if (size >= 0 && static_cast<size_t>(size) < offset_) {
        // The file shrank (truncation / rotation-in-place): restart from
        // the top, tail -F style; the carried partial line died with the
        // old contents.
        offset_ = 0;
        partial_.clear();
      }
      size_t avail =
          size > 0 && static_cast<size_t>(size) > offset_
              ? static_cast<size_t>(size) - offset_
              : 0;
      if (avail > 0) {
        in.seekg(static_cast<std::streamoff>(offset_));
        if (in) {
          chunk.resize(std::min(avail, options_.max_batch_bytes));
          in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
          chunk.resize(static_cast<size_t>(in.gcount()));
        }
      }
    }
  }
  offset_ += chunk.size();

  // Consume up to the last complete line; the remainder is a line the
  // writer has not finished yet and is carried to the next poll.
  std::string text = std::move(partial_);
  text += chunk;
  size_t cut = text.rfind('\n');
  if (cut == std::string::npos) {
    partial_ = std::move(text);
    text.clear();
  } else {
    partial_ = text.substr(cut + 1);
    text.resize(cut + 1);
  }

  if (text.empty() && finished_) {
    // Writer declared done and no new bytes arrived: flush a final
    // unterminated line, then end the stream.
    if (!partial_.empty()) {
      text = std::move(partial_);
      partial_.clear();
    } else {
      done_ = true;
      batch.end_of_stream = true;
      return batch;
    }
  }
  if (text.empty()) return batch;

  auto records = audit::ParseJsonlRecords(text);
  if (!records.ok()) return records.status();
  batch.records = std::move(records).value();
  return batch;
}

// ---- SimulatorSource -------------------------------------------------------

SimulatorSource::SimulatorSource(SimulatorSourceOptions options)
    : options_(std::move(options)) {
  audit::BenignWorkloadSimulator benign;
  std::vector<std::vector<audit::SyscallRecord>> streams;
  streams.push_back(benign.Generate(options_.profile));
  for (const SimulatorSourceOptions::TimedAttack& attack : options_.attacks) {
    streams.push_back(audit::CompileAttackScript(
        attack.steps, options_.profile.start_time + attack.at, attack.seed));
  }
  records_ = audit::MergeStreams(std::move(streams));
  window_end_ = options_.profile.start_time + options_.batch_window_us;
}

Result<StreamBatch> SimulatorSource::Poll() {
  StreamBatch batch;
  if (pos_ >= records_.size()) {
    batch.end_of_stream = true;
    return batch;
  }
  // Emit the next non-empty simulated-time window (records are sorted by
  // timestamp, so each window is a contiguous span).
  size_t end = pos_;
  for (;;) {
    while (end < records_.size() && records_[end].ts < window_end_) {
      ++end;
    }
    window_end_ += options_.batch_window_us;
    if (end > pos_ || end >= records_.size()) break;
  }
  batch.records.assign(records_.begin() + static_cast<long>(pos_),
                       records_.begin() + static_cast<long>(end));
  pos_ = end;
  batch.end_of_stream = pos_ >= records_.size();
  return batch;
}

}  // namespace raptor::stream
