#include "stream/ingestor.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace raptor::stream {

namespace {

std::chrono::microseconds ClampMicros(long long micros) {
  return std::chrono::microseconds(std::max<long long>(0, micros));
}

}  // namespace

StreamIngestor::StreamIngestor(EventStream* source, ApplyBatchFn apply,
                               IngestorOptions options)
    : source_(source), apply_(std::move(apply)), options_(options) {}

StreamIngestor::~StreamIngestor() { Stop(); }

void StreamIngestor::Start() {
  worker_ = std::thread([this] { Loop(); });
}

void StreamIngestor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool StreamIngestor::WaitEnd(long long timeout_micros) {
  std::unique_lock<std::mutex> lock(mu_);
  auto finished = [&] { return done_; };
  if (timeout_micros < 0) {
    cv_.wait(lock, finished);
    return true;
  }
  return cv_.wait_for(lock, ClampMicros(timeout_micros), finished);
}

IngestorStats StreamIngestor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void StreamIngestor::CollectMetrics(obs::MetricsRegistry* registry) const {
  IngestorStats s = stats();
  registry->Counter("raptor_stream_polls_total", "Source polls issued",
                    static_cast<double>(s.polls));
  registry->Counter("raptor_stream_batches_total",
                    "Non-empty batches applied to the store",
                    static_cast<double>(s.batches));
  registry->Counter("raptor_stream_records_total",
                    "Raw syscall records applied",
                    static_cast<double>(s.records));
  registry->Gauge("raptor_stream_ended",
                  "1 once the stream ended and the finish hook ran",
                  s.ended ? 1.0 : 0.0);
  registry->Gauge("raptor_stream_errored",
                  "1 when the worker hit a terminal poll/apply error",
                  s.error.ok() ? 0.0 : 1.0);
}

void StreamIngestor::Loop() {
  long long idle_micros = 0;
  Status error = Status::OK();
  bool ended = false;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) break;
    }
    auto batch = source_->Poll();
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.polls;
    }
    if (!batch.ok()) {
      error = batch.status();
      break;
    }
    if (!batch.value().records.empty()) {
      idle_micros = 0;
      Status applied = apply_(batch.value().records);
      if (!applied.ok()) {
        error = applied;
        break;
      }
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.batches;
      stats_.records += batch.value().records.size();
    }
    if (batch.value().end_of_stream) {
      ended = true;
      break;
    }
    if (batch.value().records.empty()) {
      // Idle: pace the polling, give up on a stalled live source if asked.
      idle_micros += options_.idle_wait_micros;
      if (options_.idle_give_up_micros >= 0 &&
          idle_micros >= options_.idle_give_up_micros) {
        ended = true;
        break;
      }
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, ClampMicros(options_.idle_wait_micros),
                   [&] { return stop_; });
      if (stop_) break;
    }
  }
  if (ended && error.ok() && options_.finish != nullptr) {
    error = options_.finish();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.ended = ended && error.ok();
    stats_.error = std::move(error);
    done_ = true;
  }
  cv_.notify_all();
}

}  // namespace raptor::stream
