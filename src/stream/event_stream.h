// Live event streams: the sources of continuous hunting.
//
// The batch pipeline loads a complete audit log and queries it; a real
// deployment (the paper's Sysdig agents, sf-collector-style exporters)
// produces an endless stream of records instead. EventStream is the pull
// interface the ingest worker drains: each Poll() returns the records that
// arrived since the last one, and eventually reports end-of-stream (a
// finite capture) or keeps returning empty batches (a live tail).
//
// Two built-in sources:
//  * JsonlTailSource follows a growing JSON-lines audit log on disk —
//    byte-offset resume, partial-line carry (a writer may be mid-line when
//    we read), tolerant of the file not existing yet.
//  * SimulatorSource wraps audit/simulator.h: it lays the benign workload
//    and any attack scripts on one timeline and replays it in fixed
//    simulated-time windows, so tests and benches get a deterministic
//    "live" feed with attacks landing mid-stream.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "audit/simulator.h"
#include "audit/syscall.h"
#include "common/status.h"

namespace raptor::stream {

/// One pull from a stream source. `records` may be empty while the source
/// is idle; `end_of_stream` means no further records will ever arrive
/// (every record has been returned by this or earlier polls).
struct StreamBatch {
  std::vector<audit::SyscallRecord> records;
  bool end_of_stream = false;
};

class EventStream {
 public:
  virtual ~EventStream() = default;

  /// Non-blocking pull of whatever arrived since the last Poll. The
  /// caller (StreamIngestor) owns pacing and retries.
  virtual Result<StreamBatch> Poll() = 0;
};

struct JsonlTailOptions {
  /// At most this many bytes of new content are consumed per Poll, so one
  /// giant backlog becomes several batches instead of one huge one.
  size_t max_batch_bytes = 1 << 20;
  /// Resume tailing at this byte offset instead of the file's start —
  /// pass a durable facade's restored_stream_offset() so a restarted tail
  /// continues exactly after the last persisted batch.
  size_t start_offset = 0;
};

/// Tails a JSON-lines audit log (audit/jsonl.h format) as it grows.
/// Re-opens the file per poll (tail -F style), resumes at the consumed
/// byte offset, and only parses complete lines — a trailing partial line
/// is carried until its newline arrives. A missing file is "no data yet",
/// not an error. Poll reports end_of_stream only after FinishFile() once
/// the backlog (including a final unterminated line) is drained.
class JsonlTailSource : public EventStream {
 public:
  explicit JsonlTailSource(std::string path, JsonlTailOptions options = {})
      : path_(std::move(path)),
        options_(options),
        offset_(options.start_offset) {}

  Result<StreamBatch> Poll() override;

  /// Declare the writer done: the next Poll that finds no new bytes
  /// parses any carried partial line and reports end_of_stream.
  void FinishFile() { finished_ = true; }

  size_t bytes_consumed() const { return offset_; }

  /// Byte offset just past the last *complete* line consumed — excludes a
  /// carried partial line, so it is safe to persist and later pass back as
  /// start_offset (the partial line re-reads from its beginning).
  size_t committed_offset() const { return offset_ - partial_.size(); }

 private:
  std::string path_;
  JsonlTailOptions options_;
  size_t offset_ = 0;     // bytes of the file already consumed
  std::string partial_;   // trailing unterminated line carried across polls
  bool finished_ = false;
  bool done_ = false;
};

struct SimulatorSourceOptions {
  audit::BenignProfile profile;
  /// Attack scripts laid over the benign timeline; each compiles at
  /// profile.start_time + at.
  struct TimedAttack {
    std::vector<audit::AttackStep> steps;
    audit::Timestamp at = 0;
    uint64_t seed = 7;
  };
  std::vector<TimedAttack> attacks;
  /// Simulated time per batch: each Poll returns the records of the next
  /// window (by timestamp), so batch boundaries cut through bursts the
  /// way a real collector's flush interval would.
  audit::Timestamp batch_window_us = 60'000'000;  // one simulated minute
};

/// Deterministic "live" feed from the workload simulator. The whole
/// timeline is generated up front (merged and time-sorted); Poll replays
/// it one window at a time and reports end_of_stream with the last one.
class SimulatorSource : public EventStream {
 public:
  explicit SimulatorSource(SimulatorSourceOptions options);

  Result<StreamBatch> Poll() override;

  size_t total_records() const { return records_.size(); }

 private:
  SimulatorSourceOptions options_;
  std::vector<audit::SyscallRecord> records_;  // time-sorted timeline
  size_t pos_ = 0;
  audit::Timestamp window_end_ = 0;
};

}  // namespace raptor::stream
