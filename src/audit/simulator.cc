#include "audit/simulator.h"

#include <algorithm>

#include "common/strings.h"

namespace raptor::audit {

namespace {

// Benign executables weighted toward the daily tasks the paper describes
// (file manipulation, text editing, software development).
const std::vector<std::string>& BenignExecutables() {
  static const std::vector<std::string> kExes = {
      "/usr/bin/vim",    "/usr/bin/emacs",  "/usr/bin/gcc",
      "/usr/bin/g++",    "/usr/bin/make",   "/usr/bin/python3",
      "/bin/bash",       "/bin/ls",         "/bin/cat",
      "/bin/cp",         "/bin/mv",         "/usr/bin/git",
      "/usr/bin/ssh",    "/usr/bin/scp",    "/usr/bin/rsync",
      "/usr/bin/apt",    "/usr/bin/dpkg",   "/usr/bin/firefox",
      "/usr/bin/chrome", "/usr/bin/java",   "/usr/bin/node",
      "/usr/bin/grep",   "/usr/bin/find",   "/usr/bin/tail",
  };
  return kExes;
}

const std::vector<std::string>& BenignFileStems() {
  static const std::vector<std::string> kStems = {
      "notes.txt",   "report.doc",  "main.c",     "main.cc",  "util.py",
      "Makefile",    "config.yaml", "data.csv",   "index.html",
      "paper.tex",   "todo.md",     "log.txt",    "build.log",
      "a.out",       "module.o",    "test.py",    "script.sh",
  };
  return kStems;
}

std::string BenignPath(Rng& rng, int user_idx) {
  static const std::vector<std::string> kDirs = {
      "documents", "src", "projects", "downloads", "tmp", "work", "data"};
  return StrFormat("/home/user%d/%s/%s", user_idx,
                   rng.Pick(kDirs).c_str(),
                   rng.Pick(BenignFileStems()).c_str());
}

std::string RandomIp(Rng& rng) {
  return StrFormat("%d.%d.%d.%d", static_cast<int>(rng.UniformRange(10, 220)),
                   static_cast<int>(rng.UniformRange(0, 255)),
                   static_cast<int>(rng.UniformRange(0, 255)),
                   static_cast<int>(rng.UniformRange(1, 254)));
}

}  // namespace

std::vector<SyscallRecord> BenignWorkloadSimulator::Generate(
    const BenignProfile& profile) const {
  Rng rng(profile.seed);
  std::vector<SyscallRecord> out;
  out.reserve(static_cast<size_t>(profile.num_processes) *
              profile.mean_records_per_process);

  for (int p = 0; p < profile.num_processes; ++p) {
    int user_idx = static_cast<int>(rng.Uniform(std::max(1, profile.num_users)));
    std::string user = StrFormat("user%d", user_idx);
    std::string exe = rng.Pick(BenignExecutables());
    long long pid = 1000 + static_cast<long long>(rng.Uniform(60000));
    Timestamp proc_start =
        profile.start_time +
        static_cast<Timestamp>(rng.Uniform(
            static_cast<uint64_t>(std::max<Timestamp>(1, profile.duration))));

    // Process creation by a shell.
    SyscallRecord spawn;
    spawn.ts = proc_start;
    spawn.duration = 50;
    spawn.syscall = "execve";
    spawn.pid = 900 + static_cast<long long>(rng.Uniform(100));
    spawn.exe = "/bin/bash";
    spawn.user = user;
    spawn.group = "staff";
    spawn.target_exe = exe;
    spawn.target_pid = pid;
    out.push_back(spawn);

    // Executing the binary image (file execute event).
    SyscallRecord image;
    image.ts = proc_start + 10;
    image.duration = 80;
    image.syscall = "execve";
    image.pid = pid;
    image.exe = exe;
    image.user = user;
    image.group = "staff";
    image.path = exe;
    out.push_back(image);

    int n_records = 1 + static_cast<int>(rng.Uniform(
                            static_cast<uint64_t>(
                                std::max(1, 2 * profile.mean_records_per_process))));
    Timestamp t = proc_start + 200;
    // A small working set per process so repeated accesses hit the same
    // file entities (realistic locality; also exercises data reduction).
    std::vector<std::string> working_set;
    for (int i = 0; i < 3; ++i) working_set.push_back(BenignPath(rng, user_idx));
    std::string remote_ip = RandomIp(rng);

    for (int i = 0; i < n_records; ++i) {
      SyscallRecord rec;
      rec.ts = t;
      rec.duration = 20 + static_cast<Timestamp>(rng.Uniform(400));
      rec.pid = pid;
      rec.exe = exe;
      rec.user = user;
      rec.group = "staff";
      double roll = rng.NextDouble();
      if (roll < 0.42) {
        rec.syscall = rng.Chance(0.5) ? "read" : "readv";
        rec.path = rng.Pick(working_set);
        rec.ret = static_cast<long long>(rng.UniformRange(128, 65536));
      } else if (roll < 0.80) {
        rec.syscall = rng.Chance(0.5) ? "write" : "writev";
        rec.path = rng.Pick(working_set);
        rec.ret = static_cast<long long>(rng.UniformRange(128, 65536));
      } else if (roll < 0.88) {
        rec.syscall = rng.Chance(0.5) ? "sendto" : "recvfrom";
        rec.src_ip = "10.0.0.5";
        rec.src_port = static_cast<int>(rng.UniformRange(20000, 60000));
        rec.dst_ip = remote_ip;
        rec.dst_port = rng.Chance(0.7) ? 443 : 80;
        rec.protocol = "tcp";
        rec.ret = static_cast<long long>(rng.UniformRange(64, 16384));
      } else if (roll < 0.94) {
        rec.syscall = "execve";
        rec.target_exe = rng.Pick(BenignExecutables());
        rec.target_pid = 1000 + static_cast<long long>(rng.Uniform(60000));
      } else if (roll < 0.97) {
        rec.syscall = "rename";
        rec.path = rng.Pick(working_set);
        rec.new_path = rec.path + ".bak";
      } else {
        rec.syscall = "connect";
        rec.src_ip = "10.0.0.5";
        rec.src_port = static_cast<int>(rng.UniformRange(20000, 60000));
        rec.dst_ip = remote_ip;
        rec.dst_port = 443;
        rec.protocol = "tcp";
      }
      out.push_back(rec);
      t += 1000 + static_cast<Timestamp>(rng.Uniform(200000));
    }

    SyscallRecord fin;
    fin.ts = t;
    fin.duration = 5;
    fin.syscall = "exit";
    fin.pid = pid;
    fin.exe = exe;
    fin.user = user;
    fin.group = "staff";
    out.push_back(fin);
  }
  return out;
}

std::vector<SyscallRecord> CompileAttackScript(
    const std::vector<AttackStep>& steps, Timestamp base_time, uint64_t seed) {
  Rng rng(seed);
  std::vector<SyscallRecord> out;
  for (const AttackStep& step : steps) {
    Timestamp t = base_time + step.at;
    int n = std::max(1, step.syscall_count);
    long long per_call = std::max<long long>(1, step.bytes / n);
    // One logical step is one connection: the ephemeral source port is
    // fixed for the step so its syscalls hit the same 5-tuple entity.
    int src_port = 33000 + static_cast<int>(rng.Uniform(1000));
    for (int i = 0; i < n; ++i) {
      SyscallRecord rec;
      rec.ts = t;
      rec.duration = 30 + static_cast<Timestamp>(rng.Uniform(300));
      rec.pid = step.pid;
      rec.exe = step.exe;
      rec.user = "root";
      rec.group = "root";
      rec.ret = per_call;
      switch (step.op) {
        case EventOp::kRead:
          if (!step.dst_ip.empty()) {
            rec.syscall = "read";
            rec.src_ip = "10.0.0.5";
            rec.src_port = src_port;
            rec.dst_ip = step.dst_ip;
            rec.dst_port = step.dst_port;
            rec.protocol = "tcp";
          } else {
            rec.syscall = "read";
            rec.path = step.object_path;
          }
          break;
        case EventOp::kWrite:
          if (!step.dst_ip.empty()) {
            rec.syscall = "write";
            rec.src_ip = "10.0.0.5";
            rec.src_port = src_port;
            rec.dst_ip = step.dst_ip;
            rec.dst_port = step.dst_port;
            rec.protocol = "tcp";
          } else {
            rec.syscall = "write";
            rec.path = step.object_path;
          }
          break;
        case EventOp::kExecute:
          rec.syscall = "execve";
          rec.path = step.object_path;
          rec.ret = 0;
          break;
        case EventOp::kStart:
          rec.syscall = "execve";
          rec.target_exe = step.object_exe;
          rec.target_pid = step.object_pid;
          rec.ret = 0;
          break;
        case EventOp::kEnd:
          rec.syscall = "exit";
          rec.ret = 0;
          break;
        case EventOp::kRename:
          rec.syscall = "rename";
          rec.path = step.object_path;
          rec.new_path = step.object_path + ".new";
          rec.ret = 0;
          break;
        case EventOp::kConnect:
          rec.syscall = "connect";
          rec.src_ip = "10.0.0.5";
          rec.src_port = src_port;
          rec.dst_ip = step.dst_ip;
          rec.dst_port = step.dst_port;
          rec.protocol = "tcp";
          rec.ret = 0;
          break;
        case EventOp::kSend:
          rec.syscall = "sendto";
          rec.src_ip = "10.0.0.5";
          rec.src_port = src_port;
          rec.dst_ip = step.dst_ip;
          rec.dst_port = step.dst_port;
          rec.protocol = "tcp";
          break;
        case EventOp::kRecv:
          rec.syscall = "recvfrom";
          rec.src_ip = "10.0.0.5";
          rec.src_port = src_port;
          rec.dst_ip = step.dst_ip;
          rec.dst_port = step.dst_port;
          rec.protocol = "tcp";
          break;
      }
      out.push_back(rec);
      // Consecutive syscalls of one logical operation land within the
      // 1-second merge window used by data reduction.
      t += 500 + static_cast<Timestamp>(rng.Uniform(2000));
    }
  }
  return out;
}

std::vector<SyscallRecord> MergeStreams(
    std::vector<std::vector<SyscallRecord>> streams) {
  std::vector<SyscallRecord> out;
  size_t total = 0;
  for (const auto& s : streams) total += s.size();
  out.reserve(total);
  for (auto& s : streams) {
    out.insert(out.end(), std::make_move_iterator(s.begin()),
               std::make_move_iterator(s.end()));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SyscallRecord& a, const SyscallRecord& b) {
                     return a.ts < b.ts;
                   });
  return out;
}

}  // namespace raptor::audit
