#include "audit/syscall.h"

#include <algorithm>

namespace raptor::audit {

const SyscallInventory& MonitoredSyscalls() {
  static const SyscallInventory kInventory{
      /*process_to_file=*/{"read", "readv", "write", "writev", "execve",
                           "rename"},
      /*process_to_process=*/{"execve", "fork", "clone", "exit"},
      /*process_to_network=*/{"read", "readv", "recvfrom", "recvmsg", "sendto",
                              "write", "writev", "connect"},
  };
  return kInventory;
}

bool IsMonitoredSyscall(std::string_view name) {
  const SyscallInventory& inv = MonitoredSyscalls();
  auto contains = [&](const std::vector<std::string>& v) {
    return std::find(v.begin(), v.end(), name) != v.end();
  };
  return contains(inv.process_to_file) || contains(inv.process_to_process) ||
         contains(inv.process_to_network);
}

}  // namespace raptor::audit
