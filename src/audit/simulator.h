// Audit log simulator: substitutes the paper's physical testbed.
//
// The paper deploys kernel agents (Sysdig) on a live server used by >15
// active users, so the collected logs mix a small number of attack events
// into tens of millions of benign events. This module reproduces that
// setting synthetically and deterministically:
//
//  * BenignWorkloadSimulator emits syscall records for realistic background
//    activity (file manipulation, text editing, software development,
//    shell sessions, package management, web traffic) for a configurable
//    number of users and processes.
//  * AttackScript compiles a high-level multi-step attack description into
//    syscall records, including the OS-level burstiness (one logical
//    read/write becomes several syscalls) that motivates the paper's data
//    reduction step.
#pragma once

#include <string>
#include <vector>

#include "audit/syscall.h"
#include "audit/types.h"
#include "common/rng.h"

namespace raptor::audit {

/// Knobs for the benign background workload.
struct BenignProfile {
  int num_users = 15;
  /// Number of benign process instances to simulate.
  int num_processes = 300;
  /// Mean syscall records emitted per process (geometric-ish spread).
  int mean_records_per_process = 40;
  /// Log window start and length.
  Timestamp start_time = 0;
  Timestamp duration = 3600LL * 1000 * 1000;  // 1 hour in microseconds
  uint64_t seed = 42;
};

class BenignWorkloadSimulator {
 public:
  /// Generate the benign record stream for `profile`. Deterministic in
  /// profile.seed. Records are returned unsorted (as a kernel ring buffer
  /// would interleave them).
  std::vector<SyscallRecord> Generate(const BenignProfile& profile) const;
};

/// One high-level step of an attack scenario. Each step lowers to one or
/// more syscall records performed by process (exe, pid).
struct AttackStep {
  std::string exe;
  long long pid = 0;
  EventOp op = EventOp::kRead;

  // Exactly one of the following object groups applies, matching `op`:
  std::string object_path;   // file ops (read/write/execute/rename)
  std::string object_exe;    // process start
  long long object_pid = 0;
  std::string dst_ip;        // network ops (connect/send/recv/read/write)
  int dst_port = 0;

  /// How many syscall-level records this logical step expands to (the OS
  /// splits large reads/writes across syscalls; exercises data reduction).
  int syscall_count = 1;
  /// Total bytes moved across the step (split across syscalls).
  long long bytes = 4096;
  /// Offset of the step from the script base time, microseconds.
  Timestamp at = 0;
};

/// Compile an attack script to raw syscall records starting at `base_time`.
/// Deterministic in `seed` (used for sub-syscall timing jitter).
std::vector<SyscallRecord> CompileAttackScript(
    const std::vector<AttackStep>& steps, Timestamp base_time, uint64_t seed);

/// Convenience: merge streams and sort by timestamp, as the central
/// collector would before storage.
std::vector<SyscallRecord> MergeStreams(
    std::vector<std::vector<SyscallRecord>> streams);

}  // namespace raptor::audit
