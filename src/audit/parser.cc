#include "audit/parser.h"

#include <algorithm>

#include "common/strings.h"

namespace raptor::audit {

namespace {

bool IsNetworkDirected(const SyscallRecord& rec) { return !rec.dst_ip.empty(); }

}  // namespace

Status AuditLogParser::Parse(const std::vector<SyscallRecord>& records,
                             ParsedLog* out) {
  // `out` may already hold previously parsed batches (incremental
  // ingestion): entities intern into the shared store, and only the events
  // appended by THIS call are sorted and numbered — ids continue the
  // existing sequence and earlier batches are never reshuffled.
  size_t first = out->events.size();
  for (const SyscallRecord& rec : records) {
    ++stats_.records_seen;
    if (!IsMonitoredSyscall(rec.syscall)) {
      ++stats_.records_skipped;
      continue;
    }
    RAPTOR_RETURN_NOT_OK(ParseOne(rec, out));
  }
  std::stable_sort(out->events.begin() + first, out->events.end(),
                   [](const SystemEvent& a, const SystemEvent& b) {
                     return a.start_time < b.start_time;
                   });
  for (size_t i = first; i < out->events.size(); ++i) {
    out->events[i].id = i + 1;
  }
  return Status::OK();
}

Status AuditLogParser::ParseOne(const SyscallRecord& rec, ParsedLog* out) {
  if (rec.exe.empty() || rec.pid == 0) {
    return Status::InvalidArgument("syscall record without calling process: " +
                                   rec.syscall);
  }
  EntityId subject = out->entities.InternProcess(rec.exe, rec.pid, rec.cmd,
                                                 rec.user, rec.group);
  SystemEvent ev;
  ev.subject = subject;
  ev.start_time = rec.ts;
  ev.end_time = rec.ts + rec.duration;
  ev.failure_code = rec.ret < 0 ? static_cast<int>(-rec.ret) : 0;

  const std::string& sc = rec.syscall;
  if (IsNetworkDirected(rec)) {
    ev.object = out->entities.InternNetwork(rec.src_ip, rec.src_port,
                                            rec.dst_ip, rec.dst_port,
                                            rec.protocol);
    ev.object_type = EntityType::kNetwork;
    ev.amount = rec.ret > 0 ? rec.ret : 0;
    if (sc == "read" || sc == "readv") {
      ev.op = EventOp::kRead;
    } else if (sc == "recvfrom" || sc == "recvmsg") {
      ev.op = EventOp::kRecv;
    } else if (sc == "write" || sc == "writev") {
      ev.op = EventOp::kWrite;
    } else if (sc == "sendto") {
      ev.op = EventOp::kSend;
    } else if (sc == "connect") {
      ev.op = EventOp::kConnect;
      ev.amount = 0;
    } else {
      ++stats_.records_skipped;
      return Status::OK();
    }
  } else if (sc == "fork" || sc == "clone" ||
             (sc == "execve" && rec.target_pid != 0)) {
    if (rec.target_exe.empty()) {
      return Status::InvalidArgument("process syscall without target: " + sc);
    }
    ev.object = out->entities.InternProcess(rec.target_exe, rec.target_pid,
                                            /*cmd=*/"", rec.user, rec.group);
    ev.object_type = EntityType::kProcess;
    ev.op = EventOp::kStart;
  } else if (sc == "exit") {
    ev.object = subject;
    ev.object_type = EntityType::kProcess;
    ev.op = EventOp::kEnd;
  } else {
    if (rec.path.empty()) {
      return Status::InvalidArgument("file syscall without path: " + sc);
    }
    ev.object = out->entities.InternFile(rec.path, rec.user, rec.group);
    ev.object_type = EntityType::kFile;
    ev.amount = rec.ret > 0 ? rec.ret : 0;
    if (sc == "read" || sc == "readv") {
      ev.op = EventOp::kRead;
    } else if (sc == "write" || sc == "writev") {
      ev.op = EventOp::kWrite;
    } else if (sc == "execve") {
      ev.op = EventOp::kExecute;
    } else if (sc == "rename") {
      ev.op = EventOp::kRename;
      // Also intern the rename target so downstream provenance sees it.
      if (!rec.new_path.empty()) {
        out->entities.InternFile(rec.new_path, rec.user, rec.group);
      }
    } else {
      ++stats_.records_skipped;
      return Status::OK();
    }
  }
  out->events.push_back(ev);
  ++stats_.events_emitted;
  return Status::OK();
}

}  // namespace raptor::audit
