// JSON-lines serialization of raw syscall records, the on-disk interchange
// format for audit logs (one JSON object per line, mirroring how Sysdig /
// auditd exporters commonly ship events). Lets a deployment feed real
// captured logs into ThreatRaptor and lets the simulator export logs for
// external tooling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "audit/syscall.h"
#include "common/status.h"

namespace raptor::audit {

/// Serialize records, one JSON object per line. Only non-default fields are
/// emitted. Keys: ts, dur, syscall, pid, exe, cmd, user, group, path,
/// new_path, target_exe, target_pid, src_ip, src_port, dst_ip, dst_port,
/// protocol, ret.
std::string RecordsToJsonl(const std::vector<SyscallRecord>& records);

/// Parse JSON-lines content back into records. Blank lines and lines
/// starting with '#' are skipped; malformed lines fail with ParseError
/// naming the line number. Unknown keys are ignored (forward compatible).
Result<std::vector<SyscallRecord>> ParseJsonlRecords(std::string_view content);

}  // namespace raptor::audit
