// Audit log parser (Sec III-A): maps raw syscall records to typed system
// events among interned system entities.
//
// Mapping follows Table I:
//   * read/readv/write/writev on a file fd      -> file read/write events
//   * execve with a file path                   -> file execute event
//   * execve/fork/clone with a target process   -> process start event
//   * exit                                      -> process end event
//   * rename                                    -> file rename event
//   * read/readv/recvfrom/recvmsg on a socket   -> network read/recv events
//   * write/writev/sendto on a socket           -> network write/send events
//   * connect                                   -> network connect event
#pragma once

#include <vector>

#include "audit/syscall.h"
#include "audit/types.h"
#include "common/status.h"

namespace raptor::audit {

struct ParserStats {
  size_t records_seen = 0;
  size_t records_skipped = 0;  // unmonitored or malformed syscalls
  size_t events_emitted = 0;
};

class AuditLogParser {
 public:
  /// Parse raw records into `out`, appending to whatever earlier batches
  /// already put there (entities intern into the shared store; event ids
  /// continue the existing sequence). Records may arrive in any order
  /// within a batch; the appended events are sorted by start_time among
  /// themselves, earlier batches are left untouched. Unmonitored syscalls
  /// are counted and skipped, malformed records yield InvalidArgument.
  Status Parse(const std::vector<SyscallRecord>& records, ParsedLog* out);

  const ParserStats& stats() const { return stats_; }

 private:
  Status ParseOne(const SyscallRecord& rec, ParsedLog* out);

  ParserStats stats_;
};

}  // namespace raptor::audit
