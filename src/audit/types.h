// System auditing data model (Sec III-A of the paper).
//
// System entities are files, processes and network connections (Table II);
// system events are interactions <subject, operation, object> between two
// entities (Table III), parsed from kernel-level syscall records (Table I).
//
// Unique identification follows the paper: a process is identified by
// (executable name, PID), a file by its absolute path, and a network
// connection by the 5-tuple <srcip, srcport, dstip, dstport, protocol>.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace raptor::audit {

using EntityId = uint64_t;
using EventId = uint64_t;
/// Microseconds since the epoch.
using Timestamp = int64_t;

constexpr EntityId kInvalidEntity = 0;

enum class EntityType {
  kFile = 0,
  kProcess = 1,
  kNetwork = 2,
};

/// Operation type of a system event (Table III "Operation" attribute plus
/// the network operations used by TBQL queries).
enum class EventOp {
  kRead = 0,
  kWrite,
  kExecute,
  kStart,
  kEnd,
  kRename,
  kConnect,
  kSend,
  kRecv,
};

constexpr int kNumEventOps = 9;

const char* EntityTypeName(EntityType type);
const char* EventOpName(EventOp op);
std::optional<EntityType> EntityTypeFromName(std::string_view name);
std::optional<EventOp> EventOpFromName(std::string_view name);

/// A system entity with the representative attributes of Table II. Fields
/// not applicable to the entity's type are left empty / zero.
struct SystemEntity {
  EntityId id = kInvalidEntity;
  EntityType type = EntityType::kFile;

  // File attributes. `name` holds the absolute path (the paper's default
  // "name" attribute matches full paths, e.g. f1["%/etc/passwd%"]).
  std::string name;
  std::string path;

  // Process attributes.
  long long pid = 0;
  std::string exename;
  std::string cmd;

  // Network connection attributes.
  std::string srcip;
  int srcport = 0;
  std::string dstip;
  int dstport = 0;
  std::string protocol;

  // Shared attributes.
  std::string user;
  std::string group;

  /// Generic attribute accessor by TBQL attribute name (e.g. "name",
  /// "exename", "pid", "dstip"). Returns empty string for unknown or
  /// inapplicable attributes.
  std::string Attribute(std::string_view attr) const;

  /// The paper's default attribute for each entity type: "name" for files,
  /// "exename" for processes, "dstip" for network connections.
  static std::string_view DefaultAttribute(EntityType type);

  /// Unique key string used for interning (path / exename+pid / 5-tuple).
  std::string UniqueKey() const;
};

/// A system event: <subject_entity, operation, object_entity> with the
/// representative attributes of Table III.
struct SystemEvent {
  EventId id = 0;
  EntityId subject = kInvalidEntity;  // always a process
  EntityId object = kInvalidEntity;
  EntityType object_type = EntityType::kFile;
  EventOp op = EventOp::kRead;
  Timestamp start_time = 0;
  Timestamp end_time = 0;
  long long amount = 0;   // bytes moved (Data Amount)
  int failure_code = 0;   // 0 on success
};

/// Interning store for system entities. Guarantees one EntityId per unique
/// entity key, so events can be reliably related to entities (the paper
/// notes that failing to distinguish entities corrupts the analysis).
class EntityStore {
 public:
  EntityId InternFile(std::string_view path, std::string_view user = "",
                      std::string_view group = "");
  EntityId InternProcess(std::string_view exename, long long pid,
                         std::string_view cmd = "", std::string_view user = "",
                         std::string_view group = "");
  EntityId InternNetwork(std::string_view srcip, int srcport,
                         std::string_view dstip, int dstport,
                         std::string_view protocol);

  /// Intern a fully-populated entity by its UniqueKey(), ignoring its
  /// incoming id (batch ingestion remaps foreign ParsedLogs through this).
  EntityId Intern(SystemEntity entity);

  /// Precondition: id was returned by one of the Intern* methods.
  const SystemEntity& Get(EntityId id) const { return entities_[id - 1]; }

  /// All entities, ordered by id.
  const std::vector<SystemEntity>& entities() const { return entities_; }

  size_t size() const { return entities_.size(); }

 private:
  std::vector<SystemEntity> entities_;
  std::unordered_map<std::string, EntityId> by_key_;
};

/// Result of parsing an audit log: interned entities plus the event stream
/// (ordered by start_time).
struct ParsedLog {
  EntityStore entities;
  std::vector<SystemEvent> events;
};

}  // namespace raptor::audit
