#include "audit/jsonl.h"

#include <cctype>

#include "common/strings.h"

namespace raptor::audit {

namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      case '\r': out->append("\\r"); break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendStr(std::string* out, bool* first, const char* key,
               const std::string& value) {
  if (value.empty()) return;
  if (!*first) out->push_back(',');
  *first = false;
  AppendEscaped(out, key);
  out->push_back(':');
  AppendEscaped(out, value);
}

void AppendNum(std::string* out, bool* first, const char* key,
               long long value, bool always = false) {
  if (value == 0 && !always) return;
  if (!*first) out->push_back(',');
  *first = false;
  AppendEscaped(out, key);
  out->push_back(':');
  out->append(std::to_string(value));
}

/// Minimal parser for one flat JSON object with string / integer values.
class JsonObjectParser {
 public:
  explicit JsonObjectParser(std::string_view line) : s_(line) {}

  Status Parse(SyscallRecord* rec) {
    SkipWs();
    if (!Consume('{')) return Err("expected '{'");
    SkipWs();
    if (Consume('}')) return Status::OK();  // empty object
    while (true) {
      SkipWs();
      std::string key;
      RAPTOR_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      RAPTOR_RETURN_NOT_OK(ParseValueInto(key, rec));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Err("expected ',' or '}'");
    }
    SkipWs();
    if (pos_ != s_.size()) return Err("trailing characters");
    return Status::OK();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Err(std::string msg) const {
    return Status::ParseError(
        StrFormat("%s at column %zu", msg.c_str(), pos_));
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Err("expected '\"'");
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= s_.size()) return Err("dangling escape");
        char e = s_[pos_++];
        switch (e) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          default: return Err("unsupported escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Err("unterminated string");
  }

  Status ParseNumber(long long* out) {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected number");
    if (!ParseInt64(s_.substr(start, pos_ - start), out)) {
      return Err("bad integer");
    }
    return Status::OK();
  }

  Status ParseValueInto(const std::string& key, SyscallRecord* rec) {
    if (pos_ < s_.size() && s_[pos_] == '"') {
      std::string value;
      RAPTOR_RETURN_NOT_OK(ParseString(&value));
      if (key == "syscall") rec->syscall = value;
      else if (key == "exe") rec->exe = value;
      else if (key == "cmd") rec->cmd = value;
      else if (key == "user") rec->user = value;
      else if (key == "group") rec->group = value;
      else if (key == "path") rec->path = value;
      else if (key == "new_path") rec->new_path = value;
      else if (key == "target_exe") rec->target_exe = value;
      else if (key == "src_ip") rec->src_ip = value;
      else if (key == "dst_ip") rec->dst_ip = value;
      else if (key == "protocol") rec->protocol = value;
      // Unknown string keys ignored.
      return Status::OK();
    }
    long long n = 0;
    RAPTOR_RETURN_NOT_OK(ParseNumber(&n));
    if (key == "ts") rec->ts = n;
    else if (key == "dur") rec->duration = n;
    else if (key == "pid") rec->pid = n;
    else if (key == "target_pid") rec->target_pid = n;
    else if (key == "src_port") rec->src_port = static_cast<int>(n);
    else if (key == "dst_port") rec->dst_port = static_cast<int>(n);
    else if (key == "ret") rec->ret = n;
    // Unknown numeric keys ignored.
    return Status::OK();
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

std::string RecordsToJsonl(const std::vector<SyscallRecord>& records) {
  std::string out;
  for (const SyscallRecord& r : records) {
    out.push_back('{');
    bool first = true;
    AppendNum(&out, &first, "ts", r.ts, /*always=*/true);
    AppendNum(&out, &first, "dur", r.duration);
    AppendStr(&out, &first, "syscall", r.syscall);
    AppendNum(&out, &first, "pid", r.pid, /*always=*/true);
    AppendStr(&out, &first, "exe", r.exe);
    AppendStr(&out, &first, "cmd", r.cmd);
    AppendStr(&out, &first, "user", r.user);
    AppendStr(&out, &first, "group", r.group);
    AppendStr(&out, &first, "path", r.path);
    AppendStr(&out, &first, "new_path", r.new_path);
    AppendStr(&out, &first, "target_exe", r.target_exe);
    AppendNum(&out, &first, "target_pid", r.target_pid);
    AppendStr(&out, &first, "src_ip", r.src_ip);
    AppendNum(&out, &first, "src_port", r.src_port);
    AppendStr(&out, &first, "dst_ip", r.dst_ip);
    AppendNum(&out, &first, "dst_port", r.dst_port);
    AppendStr(&out, &first, "protocol", r.protocol);
    AppendNum(&out, &first, "ret", r.ret);
    out.append("}\n");
  }
  return out;
}

Result<std::vector<SyscallRecord>> ParseJsonlRecords(
    std::string_view content) {
  std::vector<SyscallRecord> records;
  size_t line_no = 0;
  for (const std::string& line : Split(content, '\n')) {
    ++line_no;
    std::string_view trimmed = TrimView(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    SyscallRecord rec;
    JsonObjectParser parser(trimmed);
    Status st = parser.Parse(&rec);
    if (!st.ok()) {
      return Status::ParseError(StrFormat("line %zu: %s", line_no,
                                          st.message().c_str()));
    }
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace raptor::audit
