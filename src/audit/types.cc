#include "audit/types.h"

#include "common/strings.h"

namespace raptor::audit {

const char* EntityTypeName(EntityType type) {
  switch (type) {
    case EntityType::kFile: return "file";
    case EntityType::kProcess: return "proc";
    case EntityType::kNetwork: return "ip";
  }
  return "?";
}

const char* EventOpName(EventOp op) {
  switch (op) {
    case EventOp::kRead: return "read";
    case EventOp::kWrite: return "write";
    case EventOp::kExecute: return "execute";
    case EventOp::kStart: return "start";
    case EventOp::kEnd: return "end";
    case EventOp::kRename: return "rename";
    case EventOp::kConnect: return "connect";
    case EventOp::kSend: return "send";
    case EventOp::kRecv: return "recv";
  }
  return "?";
}

std::optional<EntityType> EntityTypeFromName(std::string_view name) {
  if (name == "file") return EntityType::kFile;
  if (name == "proc" || name == "process") return EntityType::kProcess;
  if (name == "ip" || name == "network") return EntityType::kNetwork;
  return std::nullopt;
}

std::optional<EventOp> EventOpFromName(std::string_view name) {
  std::string n = ToLower(name);
  if (n == "read") return EventOp::kRead;
  if (n == "write") return EventOp::kWrite;
  if (n == "execute") return EventOp::kExecute;
  if (n == "start") return EventOp::kStart;
  if (n == "end") return EventOp::kEnd;
  if (n == "rename") return EventOp::kRename;
  if (n == "connect") return EventOp::kConnect;
  if (n == "send") return EventOp::kSend;
  if (n == "recv") return EventOp::kRecv;
  return std::nullopt;
}

std::string SystemEntity::Attribute(std::string_view attr) const {
  if (attr == "name") return name;
  if (attr == "path") return path;
  if (attr == "pid") return pid ? std::to_string(pid) : std::string();
  if (attr == "exename") return exename;
  if (attr == "cmd") return cmd;
  if (attr == "srcip") return srcip;
  if (attr == "srcport") return srcport ? std::to_string(srcport) : std::string();
  if (attr == "dstip") return dstip;
  if (attr == "dstport") return dstport ? std::to_string(dstport) : std::string();
  if (attr == "protocol") return protocol;
  if (attr == "user") return user;
  if (attr == "group") return group;
  return std::string();
}

std::string_view SystemEntity::DefaultAttribute(EntityType type) {
  switch (type) {
    case EntityType::kFile: return "name";
    case EntityType::kProcess: return "exename";
    case EntityType::kNetwork: return "dstip";
  }
  return "name";
}

std::string SystemEntity::UniqueKey() const {
  switch (type) {
    case EntityType::kFile:
      return "f:" + name;
    case EntityType::kProcess:
      return "p:" + exename + "#" + std::to_string(pid);
    case EntityType::kNetwork:
      return "n:" + srcip + ":" + std::to_string(srcport) + ">" + dstip + ":" +
             std::to_string(dstport) + "/" + protocol;
  }
  return name;
}

EntityId EntityStore::Intern(SystemEntity entity) {
  std::string key = entity.UniqueKey();
  auto it = by_key_.find(key);
  if (it != by_key_.end()) return it->second;
  entity.id = entities_.size() + 1;
  EntityId id = entity.id;
  entities_.push_back(std::move(entity));
  by_key_.emplace(std::move(key), id);
  return id;
}

EntityId EntityStore::InternFile(std::string_view path, std::string_view user,
                                 std::string_view group) {
  SystemEntity e;
  e.type = EntityType::kFile;
  e.name = std::string(path);
  e.path = std::string(path);
  e.user = std::string(user);
  e.group = std::string(group);
  return Intern(std::move(e));
}

EntityId EntityStore::InternProcess(std::string_view exename, long long pid,
                                    std::string_view cmd,
                                    std::string_view user,
                                    std::string_view group) {
  SystemEntity e;
  e.type = EntityType::kProcess;
  e.exename = std::string(exename);
  e.pid = pid;
  e.cmd = std::string(cmd);
  e.user = std::string(user);
  e.group = std::string(group);
  return Intern(std::move(e));
}

EntityId EntityStore::InternNetwork(std::string_view srcip, int srcport,
                                    std::string_view dstip, int dstport,
                                    std::string_view protocol) {
  SystemEntity e;
  e.type = EntityType::kNetwork;
  e.srcip = std::string(srcip);
  e.srcport = srcport;
  e.dstip = std::string(dstip);
  e.dstport = dstport;
  e.protocol = std::string(protocol);
  // The paper's default network attribute is dstip; expose it as `name` too
  // so generic tooling has a printable identifier.
  e.name = e.dstip;
  return Intern(std::move(e));
}

}  // namespace raptor::audit
