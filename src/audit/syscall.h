// Raw kernel-level syscall records, as emitted by auditing frameworks such
// as Sysdig / Linux Audit / ETW (the paper's collection layer). This repo
// replaces the kernel agent with a simulator (audit/simulator.h) that emits
// the same record schema; the parser (audit/parser.h) is agnostic to the
// producer.
#pragma once

#include <string>

#include "audit/types.h"

namespace raptor::audit {

/// One raw audit record for a monitored system call (Table I).
struct SyscallRecord {
  Timestamp ts = 0;         // entry timestamp, microseconds
  Timestamp duration = 0;   // syscall duration, microseconds
  std::string syscall;      // e.g. "read", "execve", "sendto"
  long long pid = 0;        // calling process
  std::string exe;          // calling process executable (absolute path)
  std::string cmd;          // calling process command line
  std::string user;
  std::string group;

  // File-directed syscalls.
  std::string path;         // target file absolute path
  std::string new_path;     // rename target

  // Process-directed syscalls (fork/clone/execve).
  std::string target_exe;
  long long target_pid = 0;

  // Network-directed syscalls.
  std::string src_ip;
  int src_port = 0;
  std::string dst_ip;
  int dst_port = 0;
  std::string protocol;     // "tcp" / "udp"

  long long ret = 0;        // return value: bytes moved, or -errno
};

/// True if `name` is one of the representative system calls the paper's
/// Table I lists as processed by ThreatRaptor.
bool IsMonitoredSyscall(std::string_view name);

/// The full Table I inventory, grouped by event category. Used by the
/// bench_audit_model harness to reprint Table I.
struct SyscallInventory {
  std::vector<std::string> process_to_file;
  std::vector<std::string> process_to_process;
  std::vector<std::string> process_to_network;
};
const SyscallInventory& MonitoredSyscalls();

}  // namespace raptor::audit
