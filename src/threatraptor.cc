#include "threatraptor.h"

#include <algorithm>

#include "audit/jsonl.h"
#include "huntlib/feed.h"
#include "persist/codec.h"
#include "persist/legacy_v1.h"

namespace raptor {

Result<std::unique_ptr<ThreatRaptor>> ThreatRaptor::Open(
    const persist::DurabilityOptions& durability,
    ThreatRaptorOptions options) {
  options.service.durability = durability;
  auto tr = std::make_unique<ThreatRaptor>(std::move(options));
  if (durability.data_dir.empty()) return tr;  // plain in-memory facade
  RAPTOR_ASSIGN_OR_RETURN(
      tr->checkpointer_,
      persist::Checkpointer::Open(tr->options_.service.durability));
  tr->replaying_ = true;
  Status recovered = tr->RecoverState();
  tr->replaying_ = false;
  if (!recovered.ok()) return recovered;
  return tr;
}

Status ThreatRaptor::RecoverState() {
  if (checkpointer_->has_snapshot()) {
    persist::SystemSnapshot snap = checkpointer_->TakeRestoredSnapshot();
    // Mirror the store's entity table into the accumulator's interner:
    // entities are id-ordered, so re-interning reassigns the same ids and
    // later batches keep extending the same table.
    for (const audit::SystemEntity& e : snap.store.entities) {
      accum_.entities.Intern(e);
    }
    store_ = std::make_unique<storage::AuditStore>(options_.store);
    RAPTOR_RETURN_NOT_OK(store_->RestoreFrom(std::move(snap.store)));
    epoch_marks_ = std::move(snap.epoch_marks);
    {
      std::lock_guard<std::mutex> lock(offsets_mu_);
      for (auto& [stream, offset] : snap.stream_offsets) {
        stream_offsets_[stream] = offset;
      }
    }
    last_checkpoint_epoch_ = snap.epoch;
    // The service resumes the epoch count at the snapshot's epoch and
    // holds the standing seen-sets until their queries are resubmitted.
    options_.service.initial_epoch = snap.epoch;
    Service().SeedStanding(std::move(snap.standing));
  }
  return checkpointer_->ReplayTail(
      [&](const persist::WalRecord& record) {
        return ReplayWalRecord(record);
      });
}

Status ThreatRaptor::ReplayWalRecord(const persist::WalRecord& record) {
  switch (record.type) {
    case persist::WalRecordType::kSyscallBatch: {
      RAPTOR_ASSIGN_OR_RETURN(std::vector<audit::SyscallRecord> records,
                              audit::ParseJsonlRecords(record.payload));
      return IngestSyscalls(records, record.stream, record.stream_offset);
    }
    case persist::WalRecordType::kParsedBatch: {
      RAPTOR_ASSIGN_OR_RETURN(audit::ParsedLog log,
                              persist::DecodeParsedLog(record.payload));
      return IngestParsedLog(log);
    }
    case persist::WalRecordType::kFlush:
      return FlushIngest();
  }
  return Status::Internal("unknown WAL record type");
}

Status ThreatRaptor::IngestSyscalls(
    const std::vector<audit::SyscallRecord>& records) {
  return IngestSyscalls(records, /*stream=*/{}, /*offset_after=*/0);
}

Status ThreatRaptor::IngestSyscalls(
    const std::vector<audit::SyscallRecord>& records, std::string_view stream,
    uint64_t offset_after) {
  RAPTOR_RETURN_NOT_OK(parser_.Parse(records, &accum_));
  std::string payload;
  if (ShouldLog()) payload = audit::RecordsToJsonl(records);
  return SyncStore(persist::WalRecordType::kSyscallBatch, std::move(payload),
                   stream, offset_after);
}

Status ThreatRaptor::IngestParsedLog(const audit::ParsedLog& log) {
  // Validate first so rejection leaves no trace in the accumulator (and
  // nothing unreplayable in the WAL).
  for (const audit::SystemEvent& ev : log.events) {
    if (ev.subject < 1 || ev.subject > log.entities.size() ||
        ev.object < 1 || ev.object > log.entities.size()) {
      return Status::InvalidArgument(
          "parsed log event references an unknown entity id");
    }
  }
  std::string payload;
  if (ShouldLog()) persist::EncodeParsedLog(log, &payload);
  std::unordered_map<audit::EntityId, audit::EntityId> remap;
  remap.reserve(log.entities.size());
  for (const audit::SystemEntity& e : log.entities.entities()) {
    remap.emplace(e.id, accum_.entities.Intern(e));
  }
  for (const audit::SystemEvent& ev : log.events) {
    audit::SystemEvent copy = ev;
    copy.subject = remap.at(ev.subject);
    copy.object = remap.at(ev.object);
    copy.id = static_cast<audit::EventId>(accum_.events.size()) + 1;
    accum_.events.push_back(std::move(copy));
  }
  return SyncStore(persist::WalRecordType::kParsedBatch, std::move(payload),
                   /*stream=*/{}, /*offset_after=*/0);
}

Status ThreatRaptor::FlushIngest() {
  if (store_ == nullptr || store_->carried_event_count() == 0) {
    return Status::OK();
  }
  if (closed_) return Status::Unavailable("ThreatRaptor is closed");
  persist::WalRecord record;
  record.type = persist::WalRecordType::kFlush;
  auto epoch = Service().Ingest(
      [&](service::IngestReport* report) {
        storage::AppendStats stats;
        RAPTOR_RETURN_NOT_OK(store_->Flush(&stats));
        report->touched_entities = std::move(stats.touched_entities);
        return Status::OK();
      },
      ShouldLog() ? &record : nullptr);
  if (!epoch.ok()) return epoch.status();
  return NoteEpochApplied(epoch.value());
}

Status ThreatRaptor::SyncStore(persist::WalRecordType type,
                               std::string payload, std::string_view stream,
                               uint64_t offset_after) {
  if (closed_) return Status::Unavailable("ThreatRaptor is closed");
  if (store_ == nullptr) {
    store_ = std::make_unique<storage::AuditStore>(options_.store);
  }
  persist::WalRecord record;
  persist::WalRecord* wal_record = nullptr;
  if (ShouldLog()) {
    record.type = type;
    record.stream = std::string(stream);
    record.stream_offset = offset_after;
    record.payload = std::move(payload);
    wal_record = &record;
  }
  auto epoch = Service().Ingest(
      [&](service::IngestReport* report) {
        storage::AppendStats stats;
        RAPTOR_RETURN_NOT_OK(store_->Append(accum_, &stats));
        report->touched_entities = std::move(stats.touched_entities);
        // The store consumed this batch's events; keep only the entity
        // table (shared interning across batches) so long-running sessions
        // do not retain a second full copy of every raw event.
        accum_.events.clear();
        // The stream's consumed-offset advances atomically with the batch
        // (same gate, same WAL record), so snapshot + replay always agree
        // with it — a restarted tail never skips or repeats a batch.
        if (!stream.empty()) {
          std::lock_guard<std::mutex> lock(offsets_mu_);
          stream_offsets_[std::string(stream)] = offset_after;
        }
        return Status::OK();
      },
      wal_record);
  if (!epoch.ok()) return epoch.status();
  return NoteEpochApplied(epoch.value());
}

Status ThreatRaptor::NoteEpochApplied(uint64_t epoch) {
  if (checkpointer_ == nullptr) return Status::OK();
  const persist::DurabilityOptions& durability = options_.service.durability;
  if (durability.retention_horizon_epochs > 0) {
    epoch_marks_.emplace_back(epoch, store_->last_event_id());
  }
  if (replaying_ || durability.snapshot_interval_epochs == 0) {
    return Status::OK();
  }
  if (epoch - last_checkpoint_epoch_ >= durability.snapshot_interval_epochs) {
    // The ingest itself succeeded; a checkpoint failure here surfaces as
    // this call's status so the caller learns persistence is in trouble.
    return Checkpoint();
  }
  return Status::OK();
}

Status ThreatRaptor::Checkpoint() {
  if (checkpointer_ == nullptr) {
    return Status::Unsupported(
        "durability is off (open with a data_dir to checkpoint)");
  }
  if (closed_) return Status::Unavailable("ThreatRaptor is closed");
  if (store_ == nullptr) {
    // Nothing ingested yet: create the (empty) store so the snapshot and
    // any standing seen-sets still persist.
    store_ = std::make_unique<storage::AuditStore>(options_.store);
  }
  const persist::DurabilityOptions& durability = options_.service.durability;
  return Service().Exclusive([&] {
    const uint64_t now_epoch = Service().epoch();
    // Retention first, so the snapshot holds exactly the surviving
    // window: evict every epoch older than the horizon by translating it
    // into an event-id watermark. Event ids stay stable; the reduction
    // ratio keeps counting evicted output (see AuditStore::
    // EvictEventsThrough), and standing seen-sets are untouched — an
    // evicted row was already delivered, and set semantics mean it is
    // never re-delivered anyway.
    if (durability.retention_horizon_epochs > 0 &&
        now_epoch > durability.retention_horizon_epochs) {
      const uint64_t cutoff = now_epoch - durability.retention_horizon_epochs;
      uint64_t watermark = 0;
      size_t expired_marks = 0;
      for (const auto& [epoch, event_id] : epoch_marks_) {
        if (epoch > cutoff) break;
        watermark = event_id;
        ++expired_marks;
      }
      if (watermark > store_->evicted_through()) {
        auto evicted = store_->EvictEventsThrough(watermark);
        if (!evicted.ok()) return evicted.status();
        events_evicted_ += evicted.value();
      }
      epochs_evicted_ += expired_marks;
      epoch_marks_.erase(epoch_marks_.begin(),
                         epoch_marks_.begin() + expired_marks);
    }

    persist::SystemSnapshot snap;
    snap.epoch = now_epoch;
    snap.store = store_->ExportSnapshotState();
    snap.epoch_marks = epoch_marks_;
    snap.standing = Service().ExportStandingSeen();
    {
      std::lock_guard<std::mutex> lock(offsets_mu_);
      snap.stream_offsets.assign(stream_offsets_.begin(),
                                 stream_offsets_.end());
    }
    RAPTOR_RETURN_NOT_OK(checkpointer_->WriteCheckpoint(snap));
    last_checkpoint_epoch_ = now_epoch;
    return Status::OK();
  });
}

Status ThreatRaptor::Close() {
  if (checkpointer_ == nullptr || closed_) return Status::OK();
  Status final_checkpoint = Checkpoint();
  closed_ = true;
  {
    std::lock_guard<std::mutex> lock(service_mu_);
    if (service_ != nullptr) service_->AttachWal(nullptr);
  }
  checkpointer_.reset();
  return final_checkpoint;
}

persist::DurabilityStats ThreatRaptor::durability_stats() const {
  persist::DurabilityStats out;
  if (checkpointer_ != nullptr) out = checkpointer_->stats();
  out.events_evicted = events_evicted_;
  out.epochs_evicted = epochs_evicted_;
  return out;
}

std::optional<uint64_t> ThreatRaptor::restored_stream_offset(
    std::string_view stream) const {
  std::lock_guard<std::mutex> lock(offsets_mu_);
  auto it = stream_offsets_.find(stream);
  if (it == stream_offsets_.end()) return std::nullopt;
  return it->second;
}

Status ThreatRaptor::ImportV1Snapshot(const std::string& path) {
  RAPTOR_ASSIGN_OR_RETURN(audit::ParsedLog log,
                          persist::LoadV1Snapshot(path));
  return IngestParsedLog(log);
}

void ThreatRaptor::CollectMetrics(obs::MetricsRegistry* registry) const {
  {
    std::lock_guard<std::mutex> lock(service_mu_);
    if (service_ != nullptr) service_->CollectMetrics(registry);
  }
  registry->Gauge("raptor_durable",
                  "1 when a data directory is attached (Open, not Closed)",
                  durable() ? 1.0 : 0.0);
  persist::DurabilityStats d = durability_stats();
  auto count = [](uint64_t v) { return static_cast<double>(v); };
  registry->Counter("raptor_wal_bytes_total",
                    "Framed WAL bytes appended this run", count(d.wal_bytes));
  registry->Counter("raptor_wal_segments_total",
                    "WAL segments created this run", count(d.wal_segments));
  registry->Counter("raptor_checkpoints_total",
                    "Sharded snapshots written this run",
                    count(d.checkpoints));
  registry->Gauge("raptor_checkpoint_last_bytes",
                  "Size of the last snapshot written",
                  count(d.snapshot_bytes));
  registry->Gauge("raptor_recovery_restored",
                  "1 when Open loaded a snapshot", d.restored ? 1.0 : 0.0);
  registry->Gauge("raptor_recovery_replayed_records",
                  "WAL records replayed after the snapshot restore",
                  count(d.replayed_records));
  registry->Counter("raptor_retention_events_evicted_total",
                    "Events removed by the retention horizon",
                    count(d.events_evicted));
  registry->Counter("raptor_retention_epochs_evicted_total",
                    "Epochs aged out by the retention horizon",
                    count(d.epochs_evicted));
}

std::string ThreatRaptor::ExportMetrics(obs::MetricsFormat format) const {
  obs::MetricsRegistry registry;
  CollectMetrics(&registry);
  return registry.Render(format);
}

Result<service::HuntResponse> ThreatRaptor::HuntTechnique(
    std::string_view technique_id,
    const std::map<std::string, std::string>& params) const {
  RAPTOR_RETURN_NOT_OK(RequireStore());
  huntlib::HuntLibrary library;
  auto spec = library.FromTechnique(technique_id, params);
  if (!spec.ok()) return spec.status();
  service::HuntRequest request = std::move(spec).value().request;
  // One-shot catalog hunts honor the facade's execution options; the
  // dialect and text come from the technique template.
  if (request.dialect == service::QueryDialect::kTbql) {
    request.exec = options_.execution;
  }
  return Service().Run(std::move(request));
}

}  // namespace raptor
