#include "service/hunt_service.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/stopwatch.h"
#include "huntlib/mqo.h"
#include "storage/graphdb/cypher_parser.h"

namespace raptor::service {

namespace {

std::chrono::microseconds ClampMicros(long long micros) {
  return std::chrono::microseconds(std::max<long long>(0, micros));
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

const char* DialectName(QueryDialect dialect) {
  switch (dialect) {
    case QueryDialect::kTbql: return "tbql";
    case QueryDialect::kCypher: return "cypher";
    case QueryDialect::kSql: return "sql";
  }
  return "unknown";
}

const char* StatusLabel(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kTimeout: return "timeout";
    default: return "error";
  }
}

/// Bridge the shared histogram's summary (obs/metrics.h — the same
/// log2-bucket interpolation the old service-private histogram used) to
/// the metrics() surface.
HuntService::LatencySummary ToLatencySummary(const obs::LogHistogram& h) {
  obs::LogHistogram::Summary s = h.Summarize();
  HuntService::LatencySummary out;
  out.count = s.count;
  out.p50_micros = s.p50;
  out.p90_micros = s.p90;
  out.p99_micros = s.p99;
  out.mean_micros = s.mean;
  out.max_micros = s.max;
  return out;
}

}  // namespace

/// The reap-back channel between outstanding tickets and the service.
/// Shutdown() severs it (service = nullptr) under mu as its FIRST step, so
/// any in-flight reap completes before teardown proceeds and no later reap
/// touches a dying service. Lock order: ServiceHook::mu -> HuntService::mu_
/// -> HuntTicket::State::mu.
struct ServiceHook {
  std::mutex mu;
  HuntService* service = nullptr;
};

/// A registered standing hunt. Refreshes run one at a time (the scheduled
/// flag, guarded by the service mutex, admits at most one queued/running
/// refresh per subscription), so the refresh-only fields need no lock.
struct StandingState {
  // Immutable after SubmitStanding().
  uint64_t id = 0;
  HuntRequest request;
  StandingSink sink;
  StandingOptions options;

  /// Unsubscribed (or service shut down); doubles as the cooperative
  /// cancellation flag of an in-flight refresh.
  std::atomic<bool> cancelled{false};

  /// Canonical query identity (huntlib/mqo.h) for refresh dedupe across
  /// structural twins; empty when dedupe is disabled. Immutable.
  std::string canonical_key;

  // Scheduling state, guarded by the service's mu_.
  bool scheduled = false;      // a refresh is queued or running
  uint64_t last_epoch = 0;     // newest epoch reflected in `seen`
  bool baseline_done = false;  // the initial full refresh has run

  /// Refresh-only: a full TBQL refresh has matched every pattern, which
  /// makes per-pattern dirty passes sound (see TryIncrementalTbql). Reset
  /// whenever the exclusive gate releases — retention can un-match a
  /// pattern without an epoch bump.
  bool tbql_all_matched = false;

  // Subscriber-visible progress.
  std::mutex mu;
  std::condition_variable cv;
  uint64_t delivered_epoch = 0;
  size_t total_rows = 0;
  bool detached = false;  // service destroyed; no further refreshes
  /// Per-subscription refresh attribution (StandingHandle::refresh_stats):
  /// how this subscription's refreshes were served. Guarded by mu.
  StandingHandle::RefreshStats refresh_stats;

  // Refresh-only: every row ever delivered (set semantics for deltas).
  std::unordered_set<std::vector<sql::Value>, sql::ValueRowHash,
                     sql::ValueRowEq>
      seen;
};

/// One deduplicated full-refresh execution (MQO layer 1). The first
/// subscription to register for a (canonical key, epoch) pair becomes the
/// leader: it executes the query and fills the entry — always, even on
/// error or cancellation, so followers can never wait forever. Followers
/// block on the entry (never on a service lock) and derive their own
/// per-subscription deltas from the shared response. No deadlock at any
/// worker count: a leader is always already running when a follower waits.
struct SharedRefresh {
  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  Status status = Status::OK();
  std::shared_ptr<const HuntResponse> response;  // null when !status.ok()
};

// ---- StandingHandle --------------------------------------------------------

uint64_t StandingHandle::id() const {
  return state_ == nullptr ? 0 : state_->id;
}

uint64_t StandingHandle::delivered_epoch() const {
  if (state_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->delivered_epoch;
}

size_t StandingHandle::total_rows() const {
  if (state_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->total_rows;
}

StandingHandle::RefreshStats StandingHandle::refresh_stats() const {
  if (state_ == nullptr) return {};
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->refresh_stats;
}

bool StandingHandle::WaitEpoch(uint64_t epoch,
                               long long timeout_micros) const {
  if (state_ == nullptr) return false;
  StandingState& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  auto reached = [&] {
    return st.delivered_epoch >= epoch || st.detached ||
           st.cancelled.load(std::memory_order_relaxed);
  };
  if (timeout_micros < 0) {
    st.cv.wait(lock, reached);
  } else if (!st.cv.wait_for(lock, ClampMicros(timeout_micros), reached)) {
    return false;
  }
  return st.delivered_epoch >= epoch;
}

void StandingHandle::Cancel() const {
  if (state_ == nullptr) return;
  state_->cancelled.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(state_->mu);  // pairs with WaitEpoch
  }
  state_->cv.notify_all();
}

// ---- HuntTicket ------------------------------------------------------------

namespace {

const Status& InvalidTicketStatus() {
  static const Status* status = new Status(
      Status::InvalidArgument("invalid hunt ticket (not from Submit)"));
  return *status;
}

}  // namespace

void HuntTicket::Reap(const std::shared_ptr<State>& state, Status status) {
  if (state->hook == nullptr) return;
  std::lock_guard<std::mutex> hook_lock(state->hook->mu);
  if (state->hook->service != nullptr) {
    state->hook->service->ReapQueued(state, std::move(status));
  }
  // Service already shut down: Shutdown() finishes every queued ticket
  // itself, so the waiter's plain wait below still terminates.
}

const Status& HuntTicket::Wait() const {
  if (state_ == nullptr) return InvalidTicketStatus();
  HuntTicket::State& st = *state_;
  // A queued hunt whose deadline passes must not wait for a worker to
  // happen to dequeue it: expire it ourselves, releasing its queue slot.
  // One reap attempt suffices — whatever its outcome, someone (the reap,
  // the admitting worker, or Shutdown) is now bound to finish the ticket.
  bool reap = false;
  {
    std::unique_lock<std::mutex> lock(st.mu);
    if (st.deadline.has_value() && !st.started && !st.done) {
      reap = !st.cv.wait_until(lock, *st.deadline,
                               [&] { return st.done || st.started; });
    }
  }
  if (reap) Reap(state_, Status::Timeout("hunt deadline exceeded"));
  std::unique_lock<std::mutex> lock(st.mu);
  st.cv.wait(lock, [&] { return st.done; });
  return st.status;
}

bool HuntTicket::WaitFor(long long micros) const {
  if (state_ == nullptr) return true;  // an invalid ticket is "finished"
  HuntTicket::State& st = *state_;
  auto until = std::chrono::steady_clock::now() + ClampMicros(micros);
  bool reap = false;
  {
    std::unique_lock<std::mutex> lock(st.mu);
    if (st.deadline.has_value() && !st.started && !st.done &&
        *st.deadline < until) {
      reap = !st.cv.wait_until(lock, *st.deadline,
                               [&] { return st.done || st.started; });
    }
  }
  if (reap) Reap(state_, Status::Timeout("hunt deadline exceeded"));
  std::unique_lock<std::mutex> lock(st.mu);
  return st.cv.wait_until(lock, until, [&] { return st.done; });
}

void HuntTicket::WaitStarted() const {
  if (state_ == nullptr) return;
  HuntTicket::State& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  st.cv.wait(lock, [&] { return st.started || st.done; });
}

bool HuntTicket::done() const {
  if (state_ == nullptr) return true;
  HuntTicket::State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  return st.done;
}

void HuntTicket::Cancel() const {
  if (state_ == nullptr) return;
  state_->cancel.store(true, std::memory_order_relaxed);
  // A still-queued hunt finishes right now and frees its slot — holding a
  // queue position until a worker dequeues the corpse would block Wait()
  // and admission capacity for nothing. Running hunts stop at their next
  // cooperative poll; the worker finishes the ticket.
  Reap(state_, Status::Cancelled("hunt cancelled"));
}

const Status& HuntTicket::status() const {
  if (state_ == nullptr) return InvalidTicketStatus();
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->status;
}

const HuntResponse& HuntTicket::response() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->response;
}

HuntResponse HuntTicket::TakeResponse() {
  std::lock_guard<std::mutex> lock(state_->mu);
  return std::move(state_->response);
}

uint64_t HuntTicket::id() const { return state_ == nullptr ? 0 : state_->id; }

// ---- HuntService -----------------------------------------------------------

HuntService::HuntService(const storage::AuditStore* store,
                         HuntServiceOptions options)
    : store_(store), options_(options) {
  if (options_.max_concurrent == 0) options_.max_concurrent = 1;
  if (options_.max_queue_per_tenant == 0) {
    options_.max_queue_per_tenant = std::max<size_t>(1, options_.max_queue / 8);
  }
  epoch_ = options_.initial_epoch;
  start_time_ = std::chrono::steady_clock::now();
  hook_ = std::make_shared<ServiceHook>();
  hook_->service = this;
}

HuntService::~HuntService() {
  Shutdown();
  for (std::thread& t : workers_) t.join();
}

void HuntService::Shutdown() {
  // Sever the ticket reap-back channel first: an in-flight Cancel/expiry
  // reap holds hook_->mu through its whole service call, so after this
  // block no ticket can re-enter the service. (Lock order: hook_->mu
  // before mu_, never the reverse.)
  {
    std::lock_guard<std::mutex> hook_lock(hook_->mu);
    hook_->service = nullptr;
  }
  std::vector<StatePtr> abandoned;
  std::vector<StandingPtr> subs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& [tenant, ts] : tenants_) {
      for (StatePtr& st : ts.queue) abandoned.push_back(std::move(st));
      ts.queue.clear();
      ts.in_rr = false;
    }
    tenant_rr_.clear();
    queued_ = 0;
    // Running hunts observe the flag at their next poll point.
    for (const StatePtr& st : running_) {
      st->cancel.store(true, std::memory_order_relaxed);
    }
    subs = std::move(standing_);
    standing_.clear();
  }
  cv_.notify_all();
  ingest_cv_.notify_all();  // blocked writers return Cancelled
  for (const StandingPtr& sub : subs) {
    sub->cancelled.store(true, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(sub->mu);
      sub->detached = true;
    }
    sub->cv.notify_all();
  }
  for (StatePtr& st : abandoned) {
    Finish(st, Status::Cancelled("hunt service shut down"), HuntResponse{});
  }
}

HuntTicket HuntService::Submit(HuntRequest request) {
  auto state = std::make_shared<HuntTicket::State>();
  state->submit_time = std::chrono::steady_clock::now();
  if (request.timeout_micros >= 0) {
    state->deadline = state->submit_time + ClampMicros(request.timeout_micros);
  }
  state->request = std::move(request);
  state->hook = hook_;
  Status rejection;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state->id = next_id_++;
    ++stats_.submitted;
    if (stop_) {
      // Not an admission-capacity problem: the service is gone, and the
      // caller should stop submitting rather than retry/back off.
      rejection = Status::Cancelled("hunt service shut down");
      ++stats_.rejected_shutdown;
    } else {
      TenantState& ts = TenantLocked(state->request.tenant);
      ts.last_active = ++activity_seq_;
      ++ts.submitted;
      if (queued_ >= options_.max_queue) {
        rejection = Status::Unavailable("hunt admission queue full");
        ++stats_.rejected;
        ++ts.rejected;
      } else if (ts.queue.size() >= ts.max_queued) {
        // The tenant's own cap — other tenants keep admitting.
        rejection = Status::Unavailable("tenant admission queue full");
        ++stats_.rejected;
        ++ts.rejected;
      } else {
        StartWorkersLocked();
        EnqueueLocked(state);
      }
      PruneIdleTenantsLocked();
    }
  }
  HuntTicket ticket{state};
  if (!rejection.ok()) {
    // Finish inline, bypassing Finish(): rejections are already counted
    // above (rejected / rejected_shutdown), not as hunt outcomes.
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->status = std::move(rejection);
      state->done = true;
    }
    state->cv.notify_all();
  } else {
    cv_.notify_one();
  }
  return ticket;
}

Result<HuntResponse> HuntService::Run(HuntRequest request) {
  HuntTicket ticket = Submit(std::move(request));
  Status status = ticket.Wait();
  if (!status.ok()) return status;
  return ticket.TakeResponse();
}

Status HuntService::AcquireGate() {
  auto wait_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  ++ingests_waiting_;
  // Writer preference: a waiting ingest (ingests_waiting_ > 0) holds off
  // new admissions, so running hunts drain instead of being replaced.
  // Queued hunts stay queued — nothing is refused. The preference is
  // bounded: after max_consecutive_ingests back-to-back acquisitions with
  // hunts waiting, the next writer yields until a worker admits one hunt
  // (which resets the window), so a firehose source cannot starve hunt
  // latency indefinitely.
  ingest_cv_.wait(lock, [&] {
    if (stop_) return true;
    if (!running_.empty() || ingest_active_) return false;
    if (queued_ > 0 && options_.max_consecutive_ingests > 0 &&
        consecutive_ingests_ >= options_.max_consecutive_ingests) {
      return false;  // budget spent; a hunt goes first
    }
    return true;
  });
  --ingests_waiting_;
  if (stop_) {
    return Status::Cancelled("hunt service shut down");
  }
  ingest_active_ = true;
  ++consecutive_ingests_;
  ++gate_acquires_;
  double waited = MicrosSince(wait_start) / 1e6;
  gate_wait_total_ += waited;
  gate_wait_max_ = std::max(gate_wait_max_, waited);
  return Status::OK();
}

void HuntService::ReleaseGate() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ingest_active_ = false;
    // Exclusive() may have rebuilt the store (retention, checkpoint
    // compaction) without an epoch bump: cached results and the
    // all-patterns-matched latch may describe data that no longer exists.
    // No refresh is running here (the gate drained running_), so the
    // refresh-only flag is safe to write.
    refresh_cache_.clear();
    graph_cache_.Clear();
    sql_cache_.Clear();
    for (const StandingPtr& sub : standing_) sub->tbql_all_matched = false;
  }
  cv_.notify_all();         // resume admissions
  ingest_cv_.notify_all();  // next writer in line
}

Result<uint64_t> HuntService::Ingest(
    const std::function<Status(IngestReport*)>& mutate) {
  return Ingest(mutate, /*wal_record=*/nullptr);
}

Result<uint64_t> HuntService::Ingest(
    const std::function<Status(IngestReport*)>& mutate,
    const persist::WalRecord* wal_record) {
  RAPTOR_RETURN_NOT_OK(AcquireGate());
  // Write-ahead: the record reaches the log before the mutation touches
  // the store, under the same exclusion as the mutation itself (the gate
  // serializes writers, so append order == apply order). If the append
  // fails, the mutation never runs and the epoch does not advance.
  bool logged = false;
  if (wal_record != nullptr && wal_ != nullptr) {
    Status appended = wal_->Append(*wal_record);
    if (!appended.ok()) {
      ReleaseGate();
      return appended;
    }
    logged = true;
  }
  // The mutation runs on the calling thread with exclusive store access:
  // no hunt is running, none admits until ingest_active_ clears, and
  // concurrent Ingest calls serialize on the flag.
  IngestReport report;
  Status mutated = mutate(&report);
  // Dedup before retaining: AppendStats reports subject+object per stored
  // event, so a hot entity shows up once per event. The dirty set is kept
  // for up to max_dirty_epochs and concatenated on every standing
  // refresh — store unique ids, not the raw event-endpoint stream.
  if (mutated.ok()) {
    std::sort(report.touched_entities.begin(), report.touched_entities.end());
    report.touched_entities.erase(std::unique(report.touched_entities.begin(),
                                              report.touched_entities.end()),
                                  report.touched_entities.end());
  }
  uint64_t new_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ingest_active_ = false;
    // The store (possibly) changed — even a failed mutation may have
    // partially applied: every MQO cache entry describes the old contents.
    refresh_cache_.clear();
    graph_cache_.Clear();
    sql_cache_.Clear();
    if (mutated.ok()) {
      new_epoch = ++epoch_;
      ++stats_.ingests;
      if (logged) ++stats_.wal_records;
      dirty_.push_back({new_epoch, std::move(report.touched_entities)});
      while (dirty_.size() > options_.max_dirty_epochs) dirty_.pop_front();
      // Wake every live standing hunt; prune unsubscribed ones.
      auto it = standing_.begin();
      while (it != standing_.end()) {
        if ((*it)->cancelled.load(std::memory_order_relaxed)) {
          it = standing_.erase(it);
        } else {
          ScheduleStandingLocked(*it);
          ++it;
        }
      }
    }
  }
  cv_.notify_all();         // resume admissions (and standing refreshes)
  ingest_cv_.notify_all();  // next writer in line
  if (!mutated.ok()) return mutated;
  return new_epoch;
}

Status HuntService::Exclusive(const std::function<Status()>& fn) {
  RAPTOR_RETURN_NOT_OK(AcquireGate());
  Status result = fn();
  ReleaseGate();
  return result;
}

void HuntService::AttachWal(persist::WalWriter* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_ = wal;
}

std::string HuntService::StandingKey(const HuntRequest& request) {
  // Unit separators keep distinct (dialect, tenant, text) triples distinct
  // even when a tenant name embeds query-ish characters.
  std::string key;
  key.reserve(request.tenant.size() + request.text.size() + 4);
  key.push_back(static_cast<char>('0' + static_cast<int>(request.dialect)));
  key.push_back('\x1f');
  key += request.tenant;
  key.push_back('\x1f');
  key += request.text;
  return key;
}

std::vector<persist::StandingSeen> HuntService::ExportStandingSeen() const {
  std::vector<persist::StandingSeen> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const StandingPtr& sub : standing_) {
    if (sub->cancelled.load(std::memory_order_relaxed)) continue;
    persist::StandingSeen seen;
    seen.key = StandingKey(sub->request);
    // The caller holds the write gate, so no refresh is running and the
    // refresh-only seen-set is safe to read.
    seen.rows.assign(sub->seen.begin(), sub->seen.end());
    std::sort(seen.rows.begin(), seen.rows.end(),
              [](const std::vector<sql::Value>& a,
                 const std::vector<sql::Value>& b) {
                return std::lexicographical_compare(
                    a.begin(), a.end(), b.begin(), b.end(),
                    [](const sql::Value& x, const sql::Value& y) {
                      return x.Compare(y) < 0;
                    });
              });
    {
      std::lock_guard<std::mutex> sub_lock(sub->mu);
      seen.total_rows = sub->total_rows;
    }
    out.push_back(std::move(seen));
  }
  return out;
}

void HuntService::SeedStanding(std::vector<persist::StandingSeen> seeds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (persist::StandingSeen& seed : seeds) {
    std::string key = seed.key;
    standing_seeds_[std::move(key)] = std::move(seed);
  }
}

uint64_t HuntService::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

StandingHandle HuntService::SubmitStanding(HuntRequest request,
                                           StandingSink sink,
                                           StandingOptions options) {
  auto sub = std::make_shared<StandingState>();
  sub->request = std::move(request);
  sub->sink = std::move(sink);
  sub->options = options;
  if (options_.mqo_dedup) {
    // Parse outside the lock; the key never changes afterwards. Tenant is
    // deliberately absent — merging structural twins across tenants is the
    // point (each keeps its own seen-set and delivery).
    switch (sub->request.dialect) {
      case QueryDialect::kTbql:
        sub->canonical_key = huntlib::CanonicalTbqlKey(sub->request.text);
        break;
      case QueryDialect::kCypher:
        sub->canonical_key = huntlib::CanonicalCypherKey(sub->request.text);
        break;
      case QueryDialect::kSql:
        sub->canonical_key = huntlib::CanonicalSqlKey(sub->request.text);
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    sub->id = next_standing_id_++;
    // A restored seen-set re-arms this subscription: the baseline refresh
    // against the recovered store delivers only rows the pre-restart run
    // never saw, and the accumulated total carries over.
    auto seed = standing_seeds_.find(StandingKey(sub->request));
    if (seed != standing_seeds_.end()) {
      for (std::vector<sql::Value>& row : seed->second.rows) {
        sub->seen.insert(std::move(row));
      }
      sub->total_rows = seed->second.total_rows;
      standing_seeds_.erase(seed);
    }
    if (stop_) {
      sub->cancelled.store(true, std::memory_order_relaxed);
      sub->detached = true;
      return StandingHandle{sub};
    }
    standing_.push_back(sub);
    StartWorkersLocked();
    ScheduleStandingLocked(sub);  // baseline refresh against current store
  }
  cv_.notify_one();
  return StandingHandle{sub};
}

size_t HuntService::standing_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const StandingPtr& sub : standing_) {
    if (!sub->cancelled.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

size_t HuntService::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_ + running_.size();
}

HuntService::Stats HuntService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.tenants = distinct_tenants_;
  out.subresult_hits =
      static_cast<size_t>(graph_cache_.hits() + sql_cache_.hits());
  return out;
}

HuntService::Metrics HuntService::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  Metrics out;
  out.queue_depth = queued_;
  out.running = running_.size();
  out.workers = workers_.size();
  out.running_cost = running_cost_;
  out.cost_budget = options_.admission_cost_budget;
  out.tracked_tenants = tenants_.size();
  out.distinct_tenants = distinct_tenants_;
  out.epoch = epoch_;
  for (const StandingPtr& sub : standing_) {
    if (sub->cancelled.load(std::memory_order_relaxed)) continue;
    ++out.standing;
    uint64_t lag = epoch_ - std::min(epoch_, sub->last_epoch);
    out.epoch_lag = std::max(out.epoch_lag, lag);
  }
  out.gate_acquires = gate_acquires_;
  out.gate_wait_seconds_total = gate_wait_total_;
  out.gate_wait_seconds_max = gate_wait_max_;
  out.consecutive_ingests = consecutive_ingests_;
  out.uptime_seconds = MicrosSince(start_time_) / 1e6;
  out.hunt_latency = ToLatencySummary(hunt_latency_);
  out.queue_wait = ToLatencySummary(queue_wait_);
  out.tenants.reserve(tenants_.size());
  for (const auto& [name, ts] : tenants_) {
    TenantMetrics tm;
    tm.tenant = name;
    tm.weight = ts.weight;
    tm.max_queued = ts.max_queued;
    tm.queued = ts.queue.size();
    tm.running = ts.running;
    tm.submitted = ts.submitted;
    tm.completed = ts.completed;
    tm.rejected = ts.rejected;
    tm.cancelled = ts.cancelled;
    tm.timed_out = ts.timed_out;
    tm.failed = ts.failed;
    tm.qps = out.uptime_seconds > 0
                 ? static_cast<double>(ts.submitted) / out.uptime_seconds
                 : 0.0;
    out.tenants.push_back(std::move(tm));
  }
  return out;
}

void HuntService::ConfigureSlowLog(const std::string& path,
                                   long long threshold_micros) {
  std::shared_ptr<obs::SlowHuntLog> log;
  if (!path.empty() && threshold_micros >= 0) {
    log = std::make_shared<obs::SlowHuntLog>(path, threshold_micros);
  }
  std::lock_guard<std::mutex> lock(mu_);
  slow_log_ = std::move(log);
}

std::shared_ptr<obs::SlowHuntLog> HuntService::SlowLogSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_log_;
}

size_t HuntService::slow_hunts_logged() const {
  std::shared_ptr<obs::SlowHuntLog> log = SlowLogSnapshot();
  return log == nullptr ? 0 : log->logged();
}

void HuntService::CollectMetrics(obs::MetricsRegistry* registry) const {
  Stats s = stats();
  Metrics m = metrics();
  obs::LogHistogram hunt_hist;
  obs::LogHistogram wait_hist;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hunt_hist = hunt_latency_;
    wait_hist = queue_wait_;
  }
  auto count = [](size_t v) { return static_cast<double>(v); };

  // Hunt lifecycle.
  registry->Counter("raptor_hunts_submitted_total", "Hunts submitted",
                    count(s.submitted));
  registry->Counter("raptor_hunts_completed_total", "Hunts finished OK",
                    count(s.completed));
  registry->Counter("raptor_hunts_failed_total",
                    "Hunts finished with a non-OK, non-cancel status",
                    count(s.failed));
  registry->Counter("raptor_hunts_cancelled_total", "Hunts cancelled",
                    count(s.cancelled));
  registry->Counter("raptor_hunts_timed_out_total", "Hunts past deadline",
                    count(s.timed_out));
  registry->Counter("raptor_hunts_rejected_total",
                    "Admission rejections (global or tenant queue cap)",
                    count(s.rejected));

  // Admission / scheduling state.
  registry->Gauge("raptor_admission_queue_depth", "Hunts queued, all tenants",
                  count(m.queue_depth));
  registry->Gauge("raptor_admission_running", "Hunts currently executing",
                  count(m.running));
  registry->Gauge("raptor_admission_workers", "Admission worker threads",
                  count(m.workers));
  registry->Gauge("raptor_admission_running_cost",
                  "Sum of running hunts' cost weights", m.running_cost);
  registry->Gauge("raptor_admission_cost_budget",
                  "Configured admission cost budget", m.cost_budget);
  registry->Gauge("raptor_tenants_tracked", "Live tenant map entries",
                  count(m.tracked_tenants));
  registry->Gauge("raptor_tenants_distinct", "Distinct tenants ever seen",
                  count(m.distinct_tenants));

  // Write gate / epochs.
  registry->Counter("raptor_ingests_total", "Epoch-gated mutations applied",
                    count(s.ingests));
  registry->Counter("raptor_wal_records_total",
                    "Mutations logged write-ahead", count(s.wal_records));
  registry->Counter("raptor_gate_acquires_total",
                    "Ingest/Exclusive write-gate acquisitions",
                    count(m.gate_acquires));
  registry->Counter("raptor_gate_wait_seconds_total",
                    "Seconds writers spent blocked at the gate",
                    m.gate_wait_seconds_total);
  registry->Gauge("raptor_gate_wait_seconds_max",
                  "Longest single gate wait", m.gate_wait_seconds_max);
  registry->Gauge("raptor_epoch", "Store epochs applied", count(m.epoch));
  registry->Gauge("raptor_epoch_lag",
                  "Epochs the slowest live standing hunt trails the store",
                  count(m.epoch_lag));

  // Standing hunts / MQO.
  registry->Gauge("raptor_standing_hunts", "Registered standing hunts",
                  count(m.standing));
  registry->Counter("raptor_standing_refreshes_total",
                    "Standing refresh executions completed",
                    count(s.standing_refreshes));
  registry->Counter("raptor_standing_incremental_total",
                    "Refreshes that ran dirty-seeded incremental passes",
                    count(s.standing_incremental));
  registry->Counter("raptor_standing_alerts_total",
                    "Refreshes that delivered a non-empty delta",
                    count(s.standing_alerts));
  registry->Counter("raptor_mqo_dedup_hits_total",
                    "Refreshes served from a structural twin's execution",
                    count(s.standing_dedup_hits));
  registry->Counter("raptor_mqo_subresult_hits_total",
                    "Shared-subresult cache hits across both backends",
                    count(s.subresult_hits));

  // Latency distributions + slow-hunt log.
  registry->Histogram("raptor_hunt_latency_micros",
                      "Submit-to-done latency of completed client hunts",
                      hunt_hist);
  registry->Histogram("raptor_queue_wait_micros",
                      "Submit-to-admission wait of client hunts", wait_hist);
  registry->Counter("raptor_slow_hunts_logged_total",
                    "Records appended by the slow-hunt log",
                    count(slow_hunts_logged()));
  registry->Gauge("raptor_uptime_seconds", "Service uptime",
                  m.uptime_seconds);

  // Per-tenant series.
  for (const TenantMetrics& t : m.tenants) {
    obs::MetricLabels labels{{"tenant", t.tenant}};
    registry->Counter("raptor_tenant_submitted_total",
                      "Hunts submitted, by tenant", count(t.submitted),
                      labels);
    registry->Counter("raptor_tenant_completed_total",
                      "Hunts finished OK, by tenant", count(t.completed),
                      labels);
    registry->Counter("raptor_tenant_rejected_total",
                      "Admission rejections, by tenant", count(t.rejected),
                      labels);
    registry->Gauge("raptor_tenant_queued", "Hunts queued, by tenant",
                    count(t.queued), labels);
    registry->Gauge("raptor_tenant_running", "Hunts running, by tenant",
                    count(t.running), labels);
  }
}

void HuntService::StartWorkersLocked() {
  if (!workers_.empty()) return;
  workers_.reserve(options_.max_concurrent);
  for (size_t i = 0; i < options_.max_concurrent; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

HuntService::TenantState& HuntService::TenantLocked(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant, TenantState{}).first;
    TenantState& ts = it->second;
    auto policy = options_.tenant_policies.find(tenant);
    if (policy != options_.tenant_policies.end()) {
      ts.weight = std::max(1, policy->second.weight);
      ts.max_queued = policy->second.max_queued;
    }
    if (ts.max_queued == 0) ts.max_queued = options_.max_queue_per_tenant;
    // First sighting — or first since the idle entry was pruned; the
    // counter is exact while distinct tenants stay within max_idle_tenants
    // of concurrent tracking, an over-estimate beyond that.
    ++distinct_tenants_;
  }
  return it->second;
}

void HuntService::SetTenantPolicy(const std::string& tenant,
                                  TenantPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.tenant_policies[tenant] = policy;
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;  // TenantLocked stamps it on creation
  TenantState& ts = it->second;
  ts.weight = std::max(1, policy.weight);
  ts.max_queued = policy.max_queued != 0 ? policy.max_queued
                                         : options_.max_queue_per_tenant;
}

bool HuntService::WriterPreferredLocked() const {
  if (ingests_waiting_ == 0) return false;
  return options_.max_consecutive_ingests == 0 ||
         consecutive_ingests_ < options_.max_consecutive_ingests;
}

double HuntService::CostWeightLocked(HuntTicket::State& state) {
  if (state.cost_weight >= 0) return state.cost_weight;
  // Safe to read index statistics here: mu_ is held and ingest_active_ is
  // false (worker predicate), and a mutation cannot start without first
  // taking mu_ in AcquireGate.
  const HuntRequest& req =
      state.standing != nullptr ? state.standing->request : state.request;
  double cost = 0;
  switch (req.dialect) {
    case QueryDialect::kTbql: {
      engine::TbqlExecutor executor(store_);
      cost = executor.EstimateCost(req.text);
      break;
    }
    case QueryDialect::kCypher:
      cost = store_->graph().EstimateCost(req.text);
      break;
    case QueryDialect::kSql:
      cost = store_->relational().EstimateCost(req.text);
      break;
  }
  double denom = std::max<double>(
      1.0, static_cast<double>(store_->entity_count() + store_->event_count()));
  double weight = std::min(1.0, std::max(options_.min_cost_weight,
                                         cost / denom));
  state.cost_weight = weight;
  return weight;
}

HuntService::StatePtr HuntService::AdmitLocked() {
  // Walk the WRR ring from its head: admit the first tenant whose
  // head-of-line hunt fits the remaining cost budget (a too-expensive head
  // does not block a cheaper tenant behind it). Stale ring entries —
  // tenants whose queue emptied through reaps — are dropped as found.
  for (size_t i = 0; i < tenant_rr_.size();) {
    auto it = tenants_.find(tenant_rr_[i]);
    if (it == tenants_.end() || it->second.queue.empty()) {
      if (it != tenants_.end()) it->second.in_rr = false;
      tenant_rr_.erase(tenant_rr_.begin() + static_cast<long>(i));
      continue;
    }
    TenantState& ts = it->second;
    double weight = CostWeightLocked(*ts.queue.front());
    if (!running_.empty() && options_.admission_cost_budget > 0 &&
        running_cost_ + weight > options_.admission_cost_budget) {
      ++i;  // over budget right now; try the next tenant's head
      continue;
    }
    StatePtr state = std::move(ts.queue.front());
    ts.queue.pop_front();
    --queued_;
    ++ts.running;
    ts.last_active = ++activity_seq_;
    // Weighted round-robin: the tenant keeps the ring head until its
    // credits for this rotation are spent or its queue drains, then
    // rotates to the back with fresh credits.
    if (--ts.credits <= 0 || ts.queue.empty()) {
      ts.in_rr = false;
      tenant_rr_.erase(tenant_rr_.begin() + static_cast<long>(i));
      if (!ts.queue.empty()) {
        ts.in_rr = true;
        ts.credits = ts.weight;
        tenant_rr_.push_back(it->first);
      }
    }
    running_.push_back(state);
    running_cost_ += weight;
    consecutive_ingests_ = 0;  // a hunt got through; writers restart their
                               // preference window
    return state;
  }
  return nullptr;
}

void HuntService::EnqueueLocked(const StatePtr& state) {
  TenantState& ts = TenantLocked(state->request.tenant);
  if (!ts.in_rr) {
    ts.in_rr = true;
    ts.credits = ts.weight;
    tenant_rr_.push_back(state->request.tenant);
  }
  ts.queue.push_back(state);
  ++queued_;
}

bool HuntService::ReapQueued(const StatePtr& state, Status status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(state->request.tenant);
    if (it == tenants_.end()) return false;
    std::deque<StatePtr>& queue = it->second.queue;
    auto pos = std::find(queue.begin(), queue.end(), state);
    if (pos == queue.end()) return false;  // admitted or finished already
    queue.erase(pos);
    --queued_;
    it->second.last_active = ++activity_seq_;
    PruneIdleTenantsLocked();
  }
  // A writer blocked on its spent preference budget may now see an empty
  // queue; stale ring entries are cleaned up lazily by AdmitLocked.
  ingest_cv_.notify_all();
  Finish(state, std::move(status), HuntResponse{});
  return true;
}

void HuntService::PruneIdleTenantsLocked() {
  auto idle = [](const TenantState& ts) {
    return ts.queue.empty() && ts.running == 0;
  };
  size_t idle_count = 0;
  for (const auto& [name, ts] : tenants_) {
    if (idle(ts)) ++idle_count;
  }
  while (idle_count > options_.max_idle_tenants) {
    auto victim = tenants_.end();
    for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
      if (!idle(it->second)) continue;
      if (victim == tenants_.end() ||
          it->second.last_active < victim->second.last_active) {
        victim = it;
      }
    }
    if (victim == tenants_.end()) break;
    tenants_.erase(victim);
    --idle_count;
  }
}

void HuntService::ScheduleStandingLocked(const StandingPtr& sub) {
  // At most one refresh per subscription is queued or running; a refresh
  // that finds further epochs applied re-covers them in one pass, so
  // back-to-back ingests coalesce instead of piling up executions. The
  // refresh bypasses max_queue — it is bounded by the subscription count,
  // not by client submissions.
  if (sub->scheduled || sub->cancelled.load(std::memory_order_relaxed)) {
    return;
  }
  auto state = std::make_shared<HuntTicket::State>();
  state->id = next_id_++;
  state->standing = sub;
  state->request.tenant = sub->request.tenant;  // fairness bucket
  sub->scheduled = true;
  EnqueueLocked(state);
}

void HuntService::WorkerLoop() {
  for (;;) {
    StatePtr state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        // Admission pauses while a mutation holds the store or a writer
        // with remaining preference budget is waiting for it (bounded
        // writer preference — ingest applies between hunt admissions
        // instead of starving behind a full queue, but cannot starve the
        // queue forever either).
        cv_.wait(lock, [&] {
          return stop_ ||
                 (queued_ > 0 && !ingest_active_ && !WriterPreferredLocked());
        });
        if (stop_) return;  // Shutdown() drained the queue
        state = AdmitLocked();
        if (state != nullptr) break;
        // Every queue head is over the cost budget: block until capacity
        // changes (a hunt completes, a reap empties a queue, a submit
        // arrives) and re-evaluate. mu_ is held from the predicate through
        // AdmitLocked, so no wakeup can slip by in between.
        cv_.wait(lock);
      }
      if (state->standing == nullptr) {
        queue_wait_.Record(MicrosSince(state->submit_time));
      }
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->started = true;
    }
    state->cv.notify_all();
    Status status = Status::OK();
    HuntResponse response;
    Process(state, &status, &response);
    // Leave running_ BEFORE finishing the ticket: a waiter observing
    // done() must also observe InFlight() without this hunt, and a drained
    // running set must wake any ingest waiting to mutate.
    bool wake_ingest = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), state));
      running_cost_ -= std::max(0.0, state->cost_weight);
      if (running_.empty()) running_cost_ = 0;  // absorb float drift
      auto it = tenants_.find(state->request.tenant);
      if (it != tenants_.end() && it->second.running > 0) {
        --it->second.running;
        it->second.last_active = ++activity_seq_;
      }
      PruneIdleTenantsLocked();
      wake_ingest = running_.empty() && ingests_waiting_ > 0;
    }
    // Capacity freed: wake cost-gated sibling workers, and the writer
    // gate if the pool drained.
    cv_.notify_all();
    if (wake_ingest) ingest_cv_.notify_all();
    Finish(state, std::move(status), std::move(response));
  }
}

void HuntService::Process(const StatePtr& state, Status* status,
                          HuntResponse* response) {
  if (state->standing != nullptr) {
    // Internal standing refresh: errors go to the subscription's sink, so
    // the internal ticket always finishes OK.
    if (!state->standing->cancelled.load(std::memory_order_relaxed)) {
      RunStanding(state->standing);
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      state->standing->scheduled = false;
    }
    return;
  }
  // Queue-time expiry: cancellation and deadlines apply while waiting for
  // admission, not just during execution.
  if (state->cancel.load(std::memory_order_relaxed)) {
    *status = Status::Cancelled("hunt cancelled");
    return;
  }
  if (state->deadline.has_value() &&
      std::chrono::steady_clock::now() > *state->deadline) {
    *status = Status::Timeout("hunt deadline exceeded");
    return;
  }
  // EXPLAIN ANALYZE / slow-hunt tracing. The root spans the whole hunt
  // lifecycle (queue wait + execution); null when neither the request nor
  // an attached slow log asks for it, which costs one branch here.
  std::shared_ptr<obs::SlowHuntLog> slow = SlowLogSnapshot();
  std::shared_ptr<obs::TraceSpan> root;
  if (state->request.profile || slow != nullptr) {
    root = obs::TraceSpan::Root("hunt");
    root->Note("dialect", DialectName(state->request.dialect));
    root->Note("tenant", state->request.tenant);
    obs::TraceSpan* queue_span = root->AddChild("queue_wait");
    queue_span->SetWindow(state->submit_time, obs::TraceSpan::Clock::now());
  }
  auto result = Execute(*state, root.get());
  if (result.ok()) {
    *response = std::move(result).value();
  } else {
    *status = result.status();
  }
  if (root != nullptr) {
    root->Note("status", StatusLabel(*status));
    root->Finish();
    if (state->request.profile) response->profile = root;
    if (slow != nullptr) {
      slow->MaybeLog(state->request.tenant,
                     DialectName(state->request.dialect), state->request.text,
                     StatusLabel(*status), MicrosSince(state->submit_time),
                     root.get());
    }
  }
}

Result<HuntResponse> HuntService::Execute(HuntTicket::State& state,
                                          obs::TraceSpan* trace) const {
  return ExecuteQuery(state.request, &state.cancel, state.deadline,
                      /*seed_filter=*/nullptr, trace);
}

Result<HuntResponse> HuntService::ExecuteQuery(
    const HuntRequest& req, const std::atomic<bool>* cancel,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    const std::unordered_set<graphdb::NodeId>* seed_filter,
    obs::TraceSpan* trace) const {
  HuntResponse response;
  response.dialect = req.dialect;
  obs::TraceSpan* exec_span = obs::Child(trace, "execute");
  Stopwatch timer;
  switch (req.dialect) {
    case QueryDialect::kTbql: {
      engine::ExecOptions opts = req.exec;
      opts.cancel = cancel;
      opts.deadline = deadline;
      if (options_.mqo_shared_subresults) {
        opts.sql_result_cache = &sql_cache_;
        opts.graph_result_cache = &graph_cache_;
      }
      opts.trace = exec_span;
      engine::TbqlExecutor executor(store_);
      auto report = executor.ExecuteText(req.text, opts);
      if (!report.ok()) {
        obs::Finish(exec_span);
        return report.status();
      }
      response.report = std::move(report).value();
      response.columns = response.report.results.columns;
      break;
    }
    case QueryDialect::kCypher: {
      graphdb::MatchOptions opts = store_->graph().options();
      opts.cancel = cancel;
      opts.deadline = deadline;
      opts.top_seed_filter = seed_filter;
      if (options_.mqo_shared_subresults) opts.result_cache = &graph_cache_;
      opts.trace = exec_span;
      graphdb::MatchStats stats;
      auto rs = store_->graph().QueryBlocks(
          req.text, opts, exec_span != nullptr ? &stats : nullptr);
      if (!rs.ok()) {
        obs::Finish(exec_span);
        return rs.status();
      }
      if (exec_span != nullptr) {
        exec_span->Set("seeds_visited",
                       static_cast<int64_t>(stats.seed_candidates));
        exec_span->Set("edges_traversed",
                       static_cast<int64_t>(stats.edges_traversed));
        exec_span->Set("rows_emitted",
                       static_cast<int64_t>(stats.rows_emitted));
        exec_span->Set("morsels_executed",
                       static_cast<int64_t>(stats.morsels_executed));
        exec_span->Set("morsels_stolen",
                       static_cast<int64_t>(stats.morsels_stolen));
      }
      response.columns = std::move(rs.value().columns);
      response.rows = std::move(rs.value().rows);
      break;
    }
    case QueryDialect::kSql: {
      sql::SelectOptions opts = store_->relational().options();
      opts.cancel = cancel;
      opts.deadline = deadline;
      if (options_.mqo_shared_subresults) opts.result_cache = &sql_cache_;
      opts.trace = exec_span;
      sql::ExecStats stats;
      auto rs = store_->relational().QueryBlocks(
          req.text, opts, exec_span != nullptr ? &stats : nullptr);
      if (!rs.ok()) {
        obs::Finish(exec_span);
        return rs.status();
      }
      if (exec_span != nullptr) {
        exec_span->Set("base_rows_scanned",
                       static_cast<int64_t>(stats.base_rows_scanned));
        exec_span->Set("index_probe_rows",
                       static_cast<int64_t>(stats.index_probe_rows));
        exec_span->Set("rows_emitted",
                       static_cast<int64_t>(stats.rows_emitted));
        exec_span->Set("columnar_filter_rows",
                       static_cast<int64_t>(stats.columnar_filter_rows));
        exec_span->Set("morsels_executed",
                       static_cast<int64_t>(stats.morsels_executed));
        exec_span->Set("morsels_stolen",
                       static_cast<int64_t>(stats.morsels_stolen));
      }
      response.columns = std::move(rs.value().columns);
      response.rows = std::move(rs.value().rows);
      break;
    }
  }
  obs::Finish(exec_span);
  // The storage executors poll the deadline amortized; catch an expiry
  // their final stride missed.
  if (deadline.has_value() && std::chrono::steady_clock::now() > *deadline) {
    return Status::Timeout("hunt deadline exceeded");
  }
  response.seconds = timer.ElapsedSeconds();
  return response;
}

namespace {

/// Per-part pattern radius: the farthest any node of the part can sit from
/// the part's seed (its first node), walking match edges. Varlen hops
/// count their maximum length (the unbounded cap when open-ended).
std::vector<size_t> PartRadii(const graphdb::CypherQuery& q,
                              const graphdb::MatchOptions& mopts) {
  std::vector<size_t> radii;
  radii.reserve(q.patterns.size());
  for (const graphdb::PatternPart& part : q.patterns) {
    size_t radius = 0;
    for (const graphdb::RelPattern& r : part.rels) {
      if (r.varlen) {
        radius += static_cast<size_t>(
            r.max_len >= 0 ? r.max_len : mopts.unbounded_varlen_cap);
      } else {
        ++radius;
      }
    }
    radii.push_back(radius);
  }
  return radii;
}

}  // namespace

bool HuntService::ExpandDirtyRegion(const std::vector<audit::EntityId>& dirty,
                                    size_t max_hops, double max_fraction,
                                    std::vector<graphdb::NodeId>* bfs_order,
                                    std::vector<size_t>* hop_boundary) const {
  const graphdb::PropertyGraph& g = store_->graph().graph();
  const size_t cap =
      static_cast<size_t>(max_fraction * static_cast<double>(g.node_count()));
  std::unordered_set<graphdb::NodeId> seen;
  std::vector<graphdb::NodeId> frontier;
  for (audit::EntityId e : dirty) {
    graphdb::NodeId n = store_->NodeForEntity(e);
    if (n == graphdb::kInvalidNode) continue;
    if (seen.insert(n).second) {
      bfs_order->push_back(n);
      frontier.push_back(n);
    }
  }
  if (seen.size() > cap) return false;
  hop_boundary->push_back(bfs_order->size());
  for (size_t hop = 0; hop < max_hops; ++hop) {
    std::vector<graphdb::NodeId> next;
    for (graphdb::NodeId n : frontier) {
      for (graphdb::EdgeId eid : g.OutEdges(n)) {
        graphdb::NodeId m = g.edge(eid).dst;
        if (seen.insert(m).second) {
          bfs_order->push_back(m);
          next.push_back(m);
        }
      }
      for (graphdb::EdgeId eid : g.InEdges(n)) {
        graphdb::NodeId m = g.edge(eid).src;
        if (seen.insert(m).second) {
          bfs_order->push_back(m);
          next.push_back(m);
        }
      }
      if (seen.size() > cap) return false;
    }
    frontier = std::move(next);
    hop_boundary->push_back(bfs_order->size());
  }
  return true;
}

bool HuntService::TryIncrementalCypher(
    StandingState& sub, const std::vector<audit::EntityId>& dirty,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    std::vector<HuntResponse>* responses, Status* status,
    obs::TraceSpan* trace) const {
  auto parsed = graphdb::ParseCypher(sub.request.text);
  if (!parsed.ok()) return false;
  graphdb::CypherQuery q = std::move(parsed).value();
  // Re-execution under a LIMIT is not monotone; full re-scan.
  if (q.patterns.empty() || q.limit >= 0) return false;

  std::vector<size_t> radii = PartRadii(q, store_->graph().options());
  size_t max_radius = *std::max_element(radii.begin(), radii.end());
  std::vector<graphdb::NodeId> order;
  std::vector<size_t> boundary;  // boundary[h] = nodes within h hops
  if (!ExpandDirtyRegion(dirty, max_radius, sub.options.max_dirty_fraction,
                         &order, &boundary)) {
    return false;
  }

  // One pass per pattern part: rotate part j to the front (the executor's
  // top_seed_filter restricts the FIRST part's seeds) and seed it from the
  // dirty region expanded by part j's own radius; the delta seen-set
  // unions the passes. Soundness: every new row contains a new edge in
  // some part j, whose endpoints are dirty — that part's seed then lies
  // within radii[j] hops of a dirty node, so pass j finds the row.
  for (size_t j = 0; j < q.patterns.size(); ++j) {
    size_t hops = std::min(radii[j], boundary.size() - 1);
    std::unordered_set<graphdb::NodeId> filter(
        order.begin(),
        order.begin() + static_cast<ptrdiff_t>(boundary[hops]));
    HuntRequest pass = sub.request;
    pass.text = q.ToString();
    obs::TraceSpan* pass_span =
        obs::Child(trace, "incremental_pass[" + std::to_string(j) + "]");
    obs::Set(pass_span, "seed_filter_nodes",
             static_cast<int64_t>(filter.size()));
    auto result = ExecuteQuery(pass, &sub.cancelled, deadline, &filter,
                               pass_span);
    obs::Finish(pass_span);
    if (!result.ok()) {
      *status = result.status();
      return true;  // eligible, but the pass failed: report, retry later
    }
    responses->push_back(std::move(result).value());
    std::rotate(q.patterns.begin(), q.patterns.begin() + 1, q.patterns.end());
  }
  return true;
}

bool HuntService::TryIncrementalTbql(
    StandingState& sub, const std::vector<audit::EntityId>& dirty,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    std::vector<HuntResponse>* responses, Status* status,
    obs::TraceSpan* trace) const {
  // Sound only after a full refresh matched every pattern: before that,
  // excessive-pattern tolerance joins over a pattern subset, and a pattern
  // that starts matching reshapes rows non-monotonically — only a full
  // execution can notice the transition.
  if (!sub.tbql_all_matched) return false;
  auto parsed = tbql::ParseTbql(sub.request.text);
  if (!parsed.ok()) return false;
  const tbql::TbqlQuery& q = parsed.value();
  if (q.patterns.empty()) return false;
  // Time windows are not monotone (a sliding "last N" drops rows as the
  // store advances); set semantics cannot retract.
  if (!q.global_windows.empty()) return false;
  for (const tbql::Pattern& p : q.patterns) {
    if (p.window.has_value()) return false;
  }
  // Every pattern must expose a joinable (non-network) entity variable to
  // constrain; an unconstrainable pattern would need a full scan anyway.
  for (const tbql::Pattern& p : q.patterns) {
    bool constrainable = (!p.subject.id.empty() &&
                          p.subject.type != audit::EntityType::kNetwork) ||
                         (!p.object.id.empty() &&
                          p.object.type != audit::EntityType::kNetwork);
    if (!constrainable) return false;
  }
  // Region guard, mirroring the Cypher fraction check: a dirty set
  // covering most of the store makes passes slower than one full run.
  double cap = sub.options.max_dirty_fraction *
               static_cast<double>(store_->entity_count());
  if (static_cast<double>(dirty.size()) > cap) return false;

  engine::EntitySet dirty_set;
  dirty_set.reserve(dirty.size());
  for (audit::EntityId e : dirty) {
    dirty_set.insert(static_cast<long long>(e));
  }

  // One pass per pattern: force pattern k first with its entity variables
  // pre-constrained to the dirty ids, and require every pattern to match
  // (under a restricted domain an empty pattern means "no new rows via
  // this pattern", not "excessive pattern"). Soundness: a new row needs a
  // new event in some pattern k, and a stored event's subject and object
  // are both recorded dirty — pass k's constrained domain contains them.
  for (size_t k = 0; k < q.patterns.size(); ++k) {
    const tbql::Pattern& p = q.patterns[k];
    engine::EntityConstraints constraints;
    if (!p.subject.id.empty() &&
        p.subject.type != audit::EntityType::kNetwork) {
      constraints[p.subject.id] = dirty_set;
    }
    if (!p.object.id.empty() &&
        p.object.type != audit::EntityType::kNetwork) {
      constraints[p.object.id] = dirty_set;
    }
    HuntRequest pass = sub.request;
    pass.exec.initial_constraints = &constraints;
    pass.exec.force_first_pattern = static_cast<int>(k);
    pass.exec.require_all_patterns = true;
    pass.exec.propagate_constraints = true;  // the passes' whole point
    pass.exec.speculative_patterns = false;  // would bypass the domains
    obs::TraceSpan* pass_span =
        obs::Child(trace, "incremental_pass[" + std::to_string(k) + "]");
    obs::Set(pass_span, "dirty_entities",
             static_cast<int64_t>(dirty_set.size()));
    auto result = ExecuteQuery(pass, &sub.cancelled, deadline, nullptr,
                               pass_span);
    obs::Finish(pass_span);
    if (!result.ok()) {
      *status = result.status();
      return true;  // eligible, but the pass failed: report, retry later
    }
    responses->push_back(std::move(result).value());
  }
  return true;
}

void HuntService::RunStanding(const StandingPtr& sub) {
  // Snapshot the epoch window this refresh covers. The refresh occupies a
  // running_ slot, so no ingest can advance the store mid-refresh.
  uint64_t target = 0;
  std::vector<audit::EntityId> dirty;
  bool have_dirty = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = epoch_;
    if (sub->baseline_done && sub->last_epoch < target && !dirty_.empty() &&
        sub->last_epoch + 1 >= dirty_.front().epoch) {
      // Every epoch in (last_epoch, target] is still retained: the union
      // of their dirty sets bounds where new rows can seed.
      have_dirty = true;
      for (const DirtyEpoch& d : dirty_) {
        if (d.epoch > sub->last_epoch) {
          dirty.insert(dirty.end(), d.entities.begin(), d.entities.end());
        }
      }
    }
  }

  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (sub->request.timeout_micros >= 0) {
    deadline = std::chrono::steady_clock::now() +
               ClampMicros(sub->request.timeout_micros);
  }
  Stopwatch timer;

  // Tracing mirrors the client-hunt path: rooted when the standing request
  // asked for a profile or a slow-hunt log is attached.
  std::shared_ptr<obs::SlowHuntLog> slow = SlowLogSnapshot();
  std::shared_ptr<obs::TraceSpan> root;
  if (sub->request.profile || slow != nullptr) {
    root = obs::TraceSpan::Root("standing_refresh");
    root->Note("dialect", DialectName(sub->request.dialect));
    root->Note("tenant", sub->request.tenant);
    root->Set("epoch", static_cast<int64_t>(target));
  }

  // Incremental dirty-seeded passes (per-part Cypher rotation, per-pattern
  // TBQL constraining); fall through to a full refresh when ineligible.
  std::vector<HuntResponse> responses;
  bool incremental = false;
  Status failure = Status::OK();
  if (have_dirty && sub->options.allow_incremental) {
    if (sub->request.dialect == QueryDialect::kCypher) {
      incremental = TryIncrementalCypher(*sub, dirty, deadline, &responses,
                                         &failure, root.get());
    } else if (sub->request.dialect == QueryDialect::kTbql) {
      incremental = TryIncrementalTbql(*sub, dirty, deadline, &responses,
                                       &failure, root.get());
    }
  }

  // Full refresh, deduplicated across structural twins (MQO layer 1): the
  // first subscription to claim the (canonical key, epoch) entry executes;
  // the rest reuse its response and pay only their own delta computation.
  std::shared_ptr<const HuntResponse> shared;
  bool dedup_followed = false;
  if (!incremental && failure.ok()) {
    std::shared_ptr<SharedRefresh> entry;
    bool leader = true;
    if (options_.mqo_dedup && !sub->canonical_key.empty()) {
      std::string key = sub->canonical_key + '\x1f' + std::to_string(target);
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, fresh] = refresh_cache_.try_emplace(key);
      if (fresh) it->second = std::make_shared<SharedRefresh>();
      leader = fresh;
      entry = it->second;
    }
    if (leader) {
      obs::Note(root.get(), "mqo",
                entry != nullptr ? "leader" : "no_dedup");
      auto result = ExecuteQuery(sub->request, &sub->cancelled, deadline,
                                 nullptr, root.get());
      if (result.ok()) {
        shared =
            std::make_shared<const HuntResponse>(std::move(result).value());
      } else {
        failure = result.status();
      }
      if (entry != nullptr) {
        // Fill unconditionally — even on error or cancellation — so a
        // follower can never wait forever.
        {
          std::lock_guard<std::mutex> lock(entry->mu);
          entry->status = failure;
          entry->response = shared;
          entry->ready = true;
        }
        entry->cv.notify_all();
      }
    } else {
      // Follower: the leader is already running on another worker (it
      // claimed the entry while admitted), so this wait is bounded by one
      // query execution and holds no service lock.
      obs::ScopedSpan wait_span(root.get(), "dedup_wait");
      obs::Note(root.get(), "mqo", "follower");
      std::unique_lock<std::mutex> lock(entry->mu);
      entry->cv.wait(lock, [&] { return entry->ready; });
      failure = entry->status;
      shared = entry->response;
      lock.unlock();
      if (shared != nullptr) {
        dedup_followed = true;
        std::lock_guard<std::mutex> service_lock(mu_);
        ++stats_.standing_dedup_hits;
      }
    }
  }

  if (!failure.ok()) {
    if (root != nullptr) {
      root->Note("status", StatusLabel(failure));
      root->Finish();
      if (slow != nullptr) {
        slow->MaybeLog(sub->request.tenant, DialectName(sub->request.dialect),
                       sub->request.text, StatusLabel(failure),
                       timer.ElapsedSeconds() * 1e6, root.get());
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      sub->scheduled = false;  // the next epoch retries (window unchanged)
    }
    if (sub->sink.on_error != nullptr &&
        !sub->cancelled.load(std::memory_order_relaxed)) {
      sub->sink.on_error(failure);
    }
    // The attempt still counts as processing the epoch for WaitEpoch —
    // otherwise a persistently-failing query (bad syntax, per-refresh
    // deadline) would block waiters forever once no further epochs
    // arrive. last_epoch stays put, so a later successful refresh
    // re-covers the window and delivers anything missed here.
    {
      std::lock_guard<std::mutex> lock(sub->mu);
      if (target > sub->delivered_epoch) sub->delivered_epoch = target;
    }
    sub->cv.notify_all();
    return;
  }

  // The full TBQL refresh just proved that every pattern matches — which
  // is what licenses later per-pattern dirty passes (see
  // TryIncrementalTbql).
  if (!incremental && sub->request.dialect == QueryDialect::kTbql &&
      shared != nullptr && shared->report.unmatched_patterns.empty()) {
    sub->tbql_all_matched = true;
  }

  // Delta: rows never delivered before (set semantics). Incremental
  // passes and shared full refreshes alike produce a superset of the
  // genuinely-new rows plus re-found old ones; the seen-set removes the
  // latter (and unions the multi-pass results).
  StandingUpdate update;
  update.subscription_id = sub->id;
  update.epoch = target;
  update.incremental = incremental;
  auto add_row = [&](std::vector<sql::Value> row) {
    auto [it, fresh] = sub->seen.insert(std::move(row));
    if (fresh) update.delta.Push(std::vector<sql::Value>(*it));
  };
  auto add_response = [&](const HuntResponse& response) {
    if (update.columns.empty()) update.columns = response.columns;
    if (sub->request.dialect == QueryDialect::kTbql) {
      for (const std::vector<std::string>& row :
           response.report.results.rows) {
        std::vector<sql::Value> vrow;
        vrow.reserve(row.size());
        for (const std::string& cell : row) vrow.emplace_back(cell);
        add_row(std::move(vrow));
      }
    } else {
      auto cursor = response.cursor();
      while (const std::vector<sql::Value>* row = cursor.Next()) {
        add_row(*row);
      }
    }
  };
  if (shared != nullptr) add_response(*shared);
  for (const HuntResponse& response : responses) add_response(response);
  update.seconds = timer.ElapsedSeconds();
  if (root != nullptr) {
    root->Note("status", "ok");
    root->Note("incremental", incremental ? "true" : "false");
    root->Set("delta_rows", static_cast<int64_t>(update.delta.row_count()));
    root->Finish();
    if (sub->request.profile) update.profile = root;
    if (slow != nullptr) {
      slow->MaybeLog(sub->request.tenant, DialectName(sub->request.dialect),
                     sub->request.text, "ok", update.seconds * 1e6,
                     root.get());
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.standing_refreshes;
    if (update.incremental) ++stats_.standing_incremental;
    if (!update.delta.empty()) ++stats_.standing_alerts;
    sub->last_epoch = target;
    sub->baseline_done = true;
  }
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    sub->total_rows += update.delta.row_count();
    update.total_rows = sub->total_rows;
    ++sub->refresh_stats.refreshes;
    if (incremental) ++sub->refresh_stats.incremental;
    if (dedup_followed) ++sub->refresh_stats.dedup_followed;
    if (!update.delta.empty()) ++sub->refresh_stats.alerts;
  }
  if (!sub->cancelled.load(std::memory_order_relaxed)) {
    if (sub->sink.on_update != nullptr) sub->sink.on_update(update);
    if (!update.delta.empty() && sub->sink.on_alert != nullptr) {
      sub->sink.on_alert(update);
    }
  }
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    sub->delivered_epoch = target;
  }
  sub->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(mu_);
    sub->scheduled = false;
  }
}

void HuntService::Finish(const StatePtr& state, Status status,
                         HuntResponse response) {
  // Count the outcome BEFORE the ticket becomes observable-done, so a
  // waiter that returns from Wait() reads up-to-date stats. Internal
  // standing refreshes are counted by RunStanding, not here.
  if (state->standing == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(state->request.tenant);
    TenantState* ts = it == tenants_.end() ? nullptr : &it->second;
    switch (status.code()) {
      case StatusCode::kOk:
        ++stats_.completed;
        if (ts != nullptr) ++ts->completed;
        hunt_latency_.Record(MicrosSince(state->submit_time));
        break;
      case StatusCode::kCancelled:
        ++stats_.cancelled;
        if (ts != nullptr) ++ts->cancelled;
        break;
      case StatusCode::kTimeout:
        ++stats_.timed_out;
        if (ts != nullptr) ++ts->timed_out;
        break;
      case StatusCode::kUnavailable: break;  // counted at rejection
      default:
        ++stats_.failed;
        if (ts != nullptr) ++ts->failed;
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->status = std::move(status);
    state->response = std::move(response);
    state->done = true;
  }
  state->cv.notify_all();
}

}  // namespace raptor::service
