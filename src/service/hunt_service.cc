#include "service/hunt_service.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/stopwatch.h"
#include "storage/graphdb/cypher_parser.h"

namespace raptor::service {

namespace {

std::chrono::microseconds ClampMicros(long long micros) {
  return std::chrono::microseconds(std::max<long long>(0, micros));
}

}  // namespace

/// A registered standing hunt. Refreshes run one at a time (the scheduled
/// flag, guarded by the service mutex, admits at most one queued/running
/// refresh per subscription), so the refresh-only fields need no lock.
struct StandingState {
  // Immutable after SubmitStanding().
  uint64_t id = 0;
  HuntRequest request;
  StandingSink sink;
  StandingOptions options;

  /// Unsubscribed (or service shut down); doubles as the cooperative
  /// cancellation flag of an in-flight refresh.
  std::atomic<bool> cancelled{false};

  // Scheduling state, guarded by the service's mu_.
  bool scheduled = false;      // a refresh is queued or running
  uint64_t last_epoch = 0;     // newest epoch reflected in `seen`
  bool baseline_done = false;  // the initial full refresh has run

  // Subscriber-visible progress.
  std::mutex mu;
  std::condition_variable cv;
  uint64_t delivered_epoch = 0;
  size_t total_rows = 0;
  bool detached = false;  // service destroyed; no further refreshes

  // Refresh-only: every row ever delivered (set semantics for deltas).
  std::unordered_set<std::vector<sql::Value>, sql::ValueRowHash,
                     sql::ValueRowEq>
      seen;
};

// ---- StandingHandle --------------------------------------------------------

uint64_t StandingHandle::id() const {
  return state_ == nullptr ? 0 : state_->id;
}

uint64_t StandingHandle::delivered_epoch() const {
  if (state_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->delivered_epoch;
}

size_t StandingHandle::total_rows() const {
  if (state_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->total_rows;
}

bool StandingHandle::WaitEpoch(uint64_t epoch,
                               long long timeout_micros) const {
  if (state_ == nullptr) return false;
  StandingState& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  auto reached = [&] {
    return st.delivered_epoch >= epoch || st.detached ||
           st.cancelled.load(std::memory_order_relaxed);
  };
  if (timeout_micros < 0) {
    st.cv.wait(lock, reached);
  } else if (!st.cv.wait_for(lock, ClampMicros(timeout_micros), reached)) {
    return false;
  }
  return st.delivered_epoch >= epoch;
}

void StandingHandle::Cancel() const {
  if (state_ == nullptr) return;
  state_->cancelled.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(state_->mu);  // pairs with WaitEpoch
  }
  state_->cv.notify_all();
}

// ---- HuntTicket ------------------------------------------------------------

namespace {

const Status& InvalidTicketStatus() {
  static const Status* status = new Status(
      Status::InvalidArgument("invalid hunt ticket (not from Submit)"));
  return *status;
}

}  // namespace

const Status& HuntTicket::Wait() const {
  if (state_ == nullptr) return InvalidTicketStatus();
  HuntTicket::State& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  st.cv.wait(lock, [&] { return st.done; });
  return st.status;
}

bool HuntTicket::WaitFor(long long micros) const {
  if (state_ == nullptr) return true;  // an invalid ticket is "finished"
  HuntTicket::State& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  return st.cv.wait_for(lock, ClampMicros(micros), [&] { return st.done; });
}

void HuntTicket::WaitStarted() const {
  if (state_ == nullptr) return;
  HuntTicket::State& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  st.cv.wait(lock, [&] { return st.started || st.done; });
}

bool HuntTicket::done() const {
  if (state_ == nullptr) return true;
  HuntTicket::State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  return st.done;
}

void HuntTicket::Cancel() const {
  if (state_ == nullptr) return;
  state_->cancel.store(true, std::memory_order_relaxed);
}

const Status& HuntTicket::status() const {
  if (state_ == nullptr) return InvalidTicketStatus();
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->status;
}

const HuntResponse& HuntTicket::response() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->response;
}

HuntResponse HuntTicket::TakeResponse() {
  std::lock_guard<std::mutex> lock(state_->mu);
  return std::move(state_->response);
}

uint64_t HuntTicket::id() const { return state_ == nullptr ? 0 : state_->id; }

// ---- HuntService -----------------------------------------------------------

HuntService::HuntService(const storage::AuditStore* store,
                         HuntServiceOptions options)
    : store_(store), options_(options) {
  if (options_.max_concurrent == 0) options_.max_concurrent = 1;
  epoch_ = options_.initial_epoch;
}

HuntService::~HuntService() {
  std::vector<StatePtr> abandoned;
  std::vector<StandingPtr> subs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& [tenant, queue] : queues_) {
      for (StatePtr& st : queue) abandoned.push_back(std::move(st));
      queue.clear();
    }
    queues_.clear();
    tenant_rr_.clear();
    queued_ = 0;
    // Running hunts observe the flag at their next poll point.
    for (const StatePtr& st : running_) {
      st->cancel.store(true, std::memory_order_relaxed);
    }
    subs = std::move(standing_);
    standing_.clear();
  }
  cv_.notify_all();
  ingest_cv_.notify_all();  // blocked writers return Cancelled
  for (const StandingPtr& sub : subs) {
    sub->cancelled.store(true, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(sub->mu);
      sub->detached = true;
    }
    sub->cv.notify_all();
  }
  for (StatePtr& st : abandoned) {
    Finish(st, Status::Cancelled("hunt service shut down"), HuntResponse{});
  }
  for (std::thread& t : workers_) t.join();
}

HuntTicket HuntService::Submit(HuntRequest request) {
  auto state = std::make_shared<HuntTicket::State>();
  if (request.timeout_micros >= 0) {
    state->deadline = std::chrono::steady_clock::now() +
                      ClampMicros(request.timeout_micros);
  }
  state->request = std::move(request);
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state->id = next_id_++;
    ++stats_.submitted;
    if (stop_ || queued_ >= options_.max_queue) {
      rejected = true;
      ++stats_.rejected;
    } else {
      StartWorkersLocked();
      EnqueueLocked(state);
    }
  }
  HuntTicket ticket{state};
  if (rejected) {
    Finish(state, Status::Unavailable("hunt admission queue full"),
           HuntResponse{});
  } else {
    cv_.notify_one();
  }
  return ticket;
}

Result<HuntResponse> HuntService::Run(HuntRequest request) {
  HuntTicket ticket = Submit(std::move(request));
  Status status = ticket.Wait();
  if (!status.ok()) return status;
  return ticket.TakeResponse();
}

Status HuntService::AcquireGate() {
  std::unique_lock<std::mutex> lock(mu_);
  ++ingests_waiting_;
  // Writer preference: a waiting ingest (ingests_waiting_ > 0) holds off
  // new admissions, so running hunts drain instead of being replaced.
  // Queued hunts stay queued — nothing is refused.
  ingest_cv_.wait(lock, [&] {
    return stop_ || (running_.empty() && !ingest_active_);
  });
  --ingests_waiting_;
  if (stop_) {
    return Status::Cancelled("hunt service shut down");
  }
  ingest_active_ = true;
  return Status::OK();
}

void HuntService::ReleaseGate() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ingest_active_ = false;
  }
  cv_.notify_all();         // resume admissions
  ingest_cv_.notify_all();  // next writer in line
}

Result<uint64_t> HuntService::Ingest(
    const std::function<Status(IngestReport*)>& mutate) {
  return Ingest(mutate, /*wal_record=*/nullptr);
}

Result<uint64_t> HuntService::Ingest(
    const std::function<Status(IngestReport*)>& mutate,
    const persist::WalRecord* wal_record) {
  RAPTOR_RETURN_NOT_OK(AcquireGate());
  // Write-ahead: the record reaches the log before the mutation touches
  // the store, under the same exclusion as the mutation itself (the gate
  // serializes writers, so append order == apply order). If the append
  // fails, the mutation never runs and the epoch does not advance.
  bool logged = false;
  if (wal_record != nullptr && wal_ != nullptr) {
    Status appended = wal_->Append(*wal_record);
    if (!appended.ok()) {
      ReleaseGate();
      return appended;
    }
    logged = true;
  }
  // The mutation runs on the calling thread with exclusive store access:
  // no hunt is running, none admits until ingest_active_ clears, and
  // concurrent Ingest calls serialize on the flag.
  IngestReport report;
  Status mutated = mutate(&report);
  // Dedup before retaining: AppendStats reports subject+object per stored
  // event, so a hot entity shows up once per event. The dirty set is kept
  // for up to max_dirty_epochs and concatenated on every standing
  // refresh — store unique ids, not the raw event-endpoint stream.
  if (mutated.ok()) {
    std::sort(report.touched_entities.begin(), report.touched_entities.end());
    report.touched_entities.erase(std::unique(report.touched_entities.begin(),
                                              report.touched_entities.end()),
                                  report.touched_entities.end());
  }
  uint64_t new_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ingest_active_ = false;
    if (mutated.ok()) {
      new_epoch = ++epoch_;
      ++stats_.ingests;
      if (logged) ++stats_.wal_records;
      dirty_.push_back({new_epoch, std::move(report.touched_entities)});
      while (dirty_.size() > options_.max_dirty_epochs) dirty_.pop_front();
      // Wake every live standing hunt; prune unsubscribed ones.
      auto it = standing_.begin();
      while (it != standing_.end()) {
        if ((*it)->cancelled.load(std::memory_order_relaxed)) {
          it = standing_.erase(it);
        } else {
          ScheduleStandingLocked(*it);
          ++it;
        }
      }
    }
  }
  cv_.notify_all();         // resume admissions (and standing refreshes)
  ingest_cv_.notify_all();  // next writer in line
  if (!mutated.ok()) return mutated;
  return new_epoch;
}

Status HuntService::Exclusive(const std::function<Status()>& fn) {
  RAPTOR_RETURN_NOT_OK(AcquireGate());
  Status result = fn();
  ReleaseGate();
  return result;
}

void HuntService::AttachWal(persist::WalWriter* wal) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_ = wal;
}

std::string HuntService::StandingKey(const HuntRequest& request) {
  // Unit separators keep distinct (dialect, tenant, text) triples distinct
  // even when a tenant name embeds query-ish characters.
  std::string key;
  key.reserve(request.tenant.size() + request.text.size() + 4);
  key.push_back(static_cast<char>('0' + static_cast<int>(request.dialect)));
  key.push_back('\x1f');
  key += request.tenant;
  key.push_back('\x1f');
  key += request.text;
  return key;
}

std::vector<persist::StandingSeen> HuntService::ExportStandingSeen() const {
  std::vector<persist::StandingSeen> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const StandingPtr& sub : standing_) {
    if (sub->cancelled.load(std::memory_order_relaxed)) continue;
    persist::StandingSeen seen;
    seen.key = StandingKey(sub->request);
    // The caller holds the write gate, so no refresh is running and the
    // refresh-only seen-set is safe to read.
    seen.rows.assign(sub->seen.begin(), sub->seen.end());
    std::sort(seen.rows.begin(), seen.rows.end(),
              [](const std::vector<sql::Value>& a,
                 const std::vector<sql::Value>& b) {
                return std::lexicographical_compare(
                    a.begin(), a.end(), b.begin(), b.end(),
                    [](const sql::Value& x, const sql::Value& y) {
                      return x.Compare(y) < 0;
                    });
              });
    {
      std::lock_guard<std::mutex> sub_lock(sub->mu);
      seen.total_rows = sub->total_rows;
    }
    out.push_back(std::move(seen));
  }
  return out;
}

void HuntService::SeedStanding(std::vector<persist::StandingSeen> seeds) {
  std::lock_guard<std::mutex> lock(mu_);
  for (persist::StandingSeen& seed : seeds) {
    std::string key = seed.key;
    standing_seeds_[std::move(key)] = std::move(seed);
  }
}

uint64_t HuntService::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

StandingHandle HuntService::SubmitStanding(HuntRequest request,
                                           StandingSink sink,
                                           StandingOptions options) {
  auto sub = std::make_shared<StandingState>();
  sub->request = std::move(request);
  sub->sink = std::move(sink);
  sub->options = options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sub->id = next_standing_id_++;
    // A restored seen-set re-arms this subscription: the baseline refresh
    // against the recovered store delivers only rows the pre-restart run
    // never saw, and the accumulated total carries over.
    auto seed = standing_seeds_.find(StandingKey(sub->request));
    if (seed != standing_seeds_.end()) {
      for (std::vector<sql::Value>& row : seed->second.rows) {
        sub->seen.insert(std::move(row));
      }
      sub->total_rows = seed->second.total_rows;
      standing_seeds_.erase(seed);
    }
    if (stop_) {
      sub->cancelled.store(true, std::memory_order_relaxed);
      sub->detached = true;
      return StandingHandle{sub};
    }
    standing_.push_back(sub);
    StartWorkersLocked();
    ScheduleStandingLocked(sub);  // baseline refresh against current store
  }
  cv_.notify_one();
  return StandingHandle{sub};
}

size_t HuntService::standing_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const StandingPtr& sub : standing_) {
    if (!sub->cancelled.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

size_t HuntService::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_ + running_.size();
}

HuntService::Stats HuntService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.tenants = queues_.size();
  return out;
}

void HuntService::StartWorkersLocked() {
  if (!workers_.empty()) return;
  workers_.reserve(options_.max_concurrent);
  for (size_t i = 0; i < options_.max_concurrent; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

HuntService::StatePtr HuntService::DequeueLocked() {
  const std::string tenant = std::move(tenant_rr_.front());
  tenant_rr_.pop_front();
  std::deque<StatePtr>& queue = queues_.at(tenant);
  StatePtr state = std::move(queue.front());
  queue.pop_front();
  --queued_;
  // Keep the tenant in rotation while it has queued work; its next
  // request waits behind every other tenant's head-of-line request.
  if (!queue.empty()) tenant_rr_.push_back(tenant);
  return state;
}

void HuntService::EnqueueLocked(const StatePtr& state) {
  const std::string& tenant = state->request.tenant;
  std::deque<StatePtr>& queue = queues_[tenant];
  if (queue.empty()) tenant_rr_.push_back(tenant);
  queue.push_back(state);
  ++queued_;
}

void HuntService::ScheduleStandingLocked(const StandingPtr& sub) {
  // At most one refresh per subscription is queued or running; a refresh
  // that finds further epochs applied re-covers them in one pass, so
  // back-to-back ingests coalesce instead of piling up executions. The
  // refresh bypasses max_queue — it is bounded by the subscription count,
  // not by client submissions.
  if (sub->scheduled || sub->cancelled.load(std::memory_order_relaxed)) {
    return;
  }
  auto state = std::make_shared<HuntTicket::State>();
  state->id = next_id_++;
  state->standing = sub;
  state->request.tenant = sub->request.tenant;  // fairness bucket
  sub->scheduled = true;
  EnqueueLocked(state);
}

void HuntService::WorkerLoop() {
  for (;;) {
    StatePtr state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Admission pauses while a mutation holds the store or a writer is
      // waiting for it (writer preference — ingest applies between hunt
      // admissions instead of starving behind a full queue).
      cv_.wait(lock, [&] {
        return stop_ ||
               (queued_ > 0 && !ingest_active_ && ingests_waiting_ == 0);
      });
      if (stop_) return;  // the destructor drained the queue
      state = DequeueLocked();
      running_.push_back(state);
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->started = true;
    }
    state->cv.notify_all();
    Status status = Status::OK();
    HuntResponse response;
    Process(state, &status, &response);
    // Leave running_ BEFORE finishing the ticket: a waiter observing
    // done() must also observe InFlight() without this hunt, and a drained
    // running set must wake any ingest waiting to mutate.
    bool wake_ingest = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), state));
      wake_ingest = running_.empty() && ingests_waiting_ > 0;
    }
    if (wake_ingest) ingest_cv_.notify_all();
    Finish(state, std::move(status), std::move(response));
  }
}

void HuntService::Process(const StatePtr& state, Status* status,
                          HuntResponse* response) {
  if (state->standing != nullptr) {
    // Internal standing refresh: errors go to the subscription's sink, so
    // the internal ticket always finishes OK.
    if (!state->standing->cancelled.load(std::memory_order_relaxed)) {
      RunStanding(state->standing);
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      state->standing->scheduled = false;
    }
    return;
  }
  // Queue-time expiry: cancellation and deadlines apply while waiting for
  // admission, not just during execution.
  if (state->cancel.load(std::memory_order_relaxed)) {
    *status = Status::Cancelled("hunt cancelled");
    return;
  }
  if (state->deadline.has_value() &&
      std::chrono::steady_clock::now() > *state->deadline) {
    *status = Status::Timeout("hunt deadline exceeded");
    return;
  }
  auto result = Execute(*state);
  if (result.ok()) {
    *response = std::move(result).value();
  } else {
    *status = result.status();
  }
}

Result<HuntResponse> HuntService::Execute(HuntTicket::State& state) const {
  return ExecuteQuery(state.request, &state.cancel, state.deadline,
                      /*seed_filter=*/nullptr);
}

Result<HuntResponse> HuntService::ExecuteQuery(
    const HuntRequest& req, const std::atomic<bool>* cancel,
    std::optional<std::chrono::steady_clock::time_point> deadline,
    const std::unordered_set<graphdb::NodeId>* seed_filter) const {
  HuntResponse response;
  response.dialect = req.dialect;
  Stopwatch timer;
  switch (req.dialect) {
    case QueryDialect::kTbql: {
      engine::ExecOptions opts = req.exec;
      opts.cancel = cancel;
      opts.deadline = deadline;
      engine::TbqlExecutor executor(store_);
      auto report = executor.ExecuteText(req.text, opts);
      if (!report.ok()) return report.status();
      response.report = std::move(report).value();
      response.columns = response.report.results.columns;
      break;
    }
    case QueryDialect::kCypher: {
      graphdb::MatchOptions opts = store_->graph().options();
      opts.cancel = cancel;
      opts.deadline = deadline;
      opts.top_seed_filter = seed_filter;
      auto rs = store_->graph().QueryBlocks(req.text, opts);
      if (!rs.ok()) return rs.status();
      response.columns = std::move(rs.value().columns);
      response.rows = std::move(rs.value().rows);
      break;
    }
    case QueryDialect::kSql: {
      sql::SelectOptions opts = store_->relational().options();
      opts.cancel = cancel;
      opts.deadline = deadline;
      auto rs = store_->relational().QueryBlocks(req.text, opts);
      if (!rs.ok()) return rs.status();
      response.columns = std::move(rs.value().columns);
      response.rows = std::move(rs.value().rows);
      break;
    }
  }
  // The storage executors poll the deadline amortized; catch an expiry
  // their final stride missed.
  if (deadline.has_value() && std::chrono::steady_clock::now() > *deadline) {
    return Status::Timeout("hunt deadline exceeded");
  }
  response.seconds = timer.ElapsedSeconds();
  return response;
}

bool HuntService::BuildDirtySeedFilter(
    const std::string& cypher_text, const std::vector<audit::EntityId>& dirty,
    double max_fraction, std::unordered_set<graphdb::NodeId>* out) const {
  auto parsed = graphdb::ParseCypher(cypher_text);
  if (!parsed.ok()) return false;
  const graphdb::CypherQuery& q = parsed.value();
  // Eligibility: a single chain (multi-part rows can combine an entirely
  // old part 0 with new activity elsewhere) without LIMIT (re-execution
  // under a limit is not monotone).
  if (q.patterns.size() != 1 || q.limit >= 0) return false;

  // Pattern radius: the farthest the part-0 seed of a match can sit from
  // any node of that match, walking match edges. Every new row contains a
  // new node or edge, whose endpoints are in `dirty` — so expanding the
  // dirty nodes by the radius covers every seed a new row can have.
  size_t radius = 0;
  const graphdb::MatchOptions& mopts = store_->graph().options();
  for (const graphdb::RelPattern& r : q.patterns[0].rels) {
    if (r.varlen) {
      radius += static_cast<size_t>(
          r.max_len >= 0 ? r.max_len : mopts.unbounded_varlen_cap);
    } else {
      ++radius;
    }
  }

  const graphdb::PropertyGraph& g = store_->graph().graph();
  const size_t cap =
      static_cast<size_t>(max_fraction * static_cast<double>(g.node_count()));
  std::vector<graphdb::NodeId> frontier;
  for (audit::EntityId e : dirty) {
    graphdb::NodeId n = store_->NodeForEntity(e);
    if (n == graphdb::kInvalidNode) continue;
    if (out->insert(n).second) frontier.push_back(n);
  }
  if (out->size() > cap) return false;
  for (size_t hop = 0; hop < radius && !frontier.empty(); ++hop) {
    std::vector<graphdb::NodeId> next;
    for (graphdb::NodeId n : frontier) {
      for (graphdb::EdgeId eid : g.OutEdges(n)) {
        graphdb::NodeId m = g.edge(eid).dst;
        if (out->insert(m).second) next.push_back(m);
      }
      for (graphdb::EdgeId eid : g.InEdges(n)) {
        graphdb::NodeId m = g.edge(eid).src;
        if (out->insert(m).second) next.push_back(m);
      }
      if (out->size() > cap) return false;
    }
    frontier = std::move(next);
  }
  return true;
}

void HuntService::RunStanding(const StandingPtr& sub) {
  // Snapshot the epoch window this refresh covers. The refresh occupies a
  // running_ slot, so no ingest can advance the store mid-refresh.
  uint64_t target = 0;
  std::vector<audit::EntityId> dirty;
  bool have_dirty = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = epoch_;
    if (sub->baseline_done && sub->last_epoch < target && !dirty_.empty() &&
        sub->last_epoch + 1 >= dirty_.front().epoch) {
      // Every epoch in (last_epoch, target] is still retained: the union
      // of their dirty sets bounds where new rows can seed.
      have_dirty = true;
      for (const DirtyEpoch& d : dirty_) {
        if (d.epoch > sub->last_epoch) {
          dirty.insert(dirty.end(), d.entities.begin(), d.entities.end());
        }
      }
    }
  }

  std::unordered_set<graphdb::NodeId> filter;
  const std::unordered_set<graphdb::NodeId>* seed_filter = nullptr;
  if (have_dirty && sub->options.allow_incremental &&
      sub->request.dialect == QueryDialect::kCypher &&
      BuildDirtySeedFilter(sub->request.text, dirty,
                           sub->options.max_dirty_fraction, &filter)) {
    seed_filter = &filter;
  }

  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (sub->request.timeout_micros >= 0) {
    deadline = std::chrono::steady_clock::now() +
               ClampMicros(sub->request.timeout_micros);
  }
  Stopwatch timer;
  auto result =
      ExecuteQuery(sub->request, &sub->cancelled, deadline, seed_filter);
  if (!result.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      sub->scheduled = false;  // the next epoch retries (window unchanged)
    }
    if (sub->sink.on_error != nullptr &&
        !sub->cancelled.load(std::memory_order_relaxed)) {
      sub->sink.on_error(result.status());
    }
    // The attempt still counts as processing the epoch for WaitEpoch —
    // otherwise a persistently-failing query (bad syntax, per-refresh
    // deadline) would block waiters forever once no further epochs
    // arrive. last_epoch stays put, so a later successful refresh
    // re-covers the window and delivers anything missed here.
    {
      std::lock_guard<std::mutex> lock(sub->mu);
      if (target > sub->delivered_epoch) sub->delivered_epoch = target;
    }
    sub->cv.notify_all();
    return;
  }
  HuntResponse response = std::move(result).value();

  // Delta: rows never delivered before (set semantics). A seed-filtered
  // refresh produces a superset of the genuinely-new rows plus re-found
  // old ones; the seen-set removes the latter.
  StandingUpdate update;
  update.subscription_id = sub->id;
  update.epoch = target;
  update.incremental = seed_filter != nullptr;
  update.columns = std::move(response.columns);
  auto add_row = [&](std::vector<sql::Value> row) {
    auto [it, fresh] = sub->seen.insert(std::move(row));
    if (fresh) update.delta.Push(std::vector<sql::Value>(*it));
  };
  if (sub->request.dialect == QueryDialect::kTbql) {
    for (const std::vector<std::string>& row :
         response.report.results.rows) {
      std::vector<sql::Value> vrow;
      vrow.reserve(row.size());
      for (const std::string& cell : row) vrow.emplace_back(cell);
      add_row(std::move(vrow));
    }
  } else {
    auto cursor = response.cursor();
    while (const std::vector<sql::Value>* row = cursor.Next()) {
      add_row(*row);
    }
  }
  update.seconds = timer.ElapsedSeconds();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.standing_refreshes;
    if (update.incremental) ++stats_.standing_incremental;
    if (!update.delta.empty()) ++stats_.standing_alerts;
    sub->last_epoch = target;
    sub->baseline_done = true;
  }
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    sub->total_rows += update.delta.row_count();
    update.total_rows = sub->total_rows;
  }
  if (!sub->cancelled.load(std::memory_order_relaxed)) {
    if (sub->sink.on_update != nullptr) sub->sink.on_update(update);
    if (!update.delta.empty() && sub->sink.on_alert != nullptr) {
      sub->sink.on_alert(update);
    }
  }
  {
    std::lock_guard<std::mutex> lock(sub->mu);
    sub->delivered_epoch = target;
  }
  sub->cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(mu_);
    sub->scheduled = false;
  }
}

void HuntService::Finish(const StatePtr& state, Status status,
                         HuntResponse response) {
  // Count the outcome BEFORE the ticket becomes observable-done, so a
  // waiter that returns from Wait() reads up-to-date stats. Internal
  // standing refreshes are counted by RunStanding, not here.
  if (state->standing == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    switch (status.code()) {
      case StatusCode::kOk: ++stats_.completed; break;
      case StatusCode::kCancelled: ++stats_.cancelled; break;
      case StatusCode::kTimeout: ++stats_.timed_out; break;
      case StatusCode::kUnavailable: break;  // counted at rejection
      default: ++stats_.failed; break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->status = std::move(status);
    state->response = std::move(response);
    state->done = true;
  }
  state->cv.notify_all();
}

}  // namespace raptor::service
