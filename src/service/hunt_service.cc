#include "service/hunt_service.h"

#include <algorithm>
#include <utility>

#include "common/stopwatch.h"

namespace raptor::service {

namespace {

std::chrono::microseconds ClampMicros(long long micros) {
  return std::chrono::microseconds(std::max<long long>(0, micros));
}

}  // namespace

// ---- HuntTicket ------------------------------------------------------------

namespace {

const Status& InvalidTicketStatus() {
  static const Status* status = new Status(
      Status::InvalidArgument("invalid hunt ticket (not from Submit)"));
  return *status;
}

}  // namespace

const Status& HuntTicket::Wait() const {
  if (state_ == nullptr) return InvalidTicketStatus();
  HuntTicket::State& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  st.cv.wait(lock, [&] { return st.done; });
  return st.status;
}

bool HuntTicket::WaitFor(long long micros) const {
  if (state_ == nullptr) return true;  // an invalid ticket is "finished"
  HuntTicket::State& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  return st.cv.wait_for(lock, ClampMicros(micros), [&] { return st.done; });
}

void HuntTicket::WaitStarted() const {
  if (state_ == nullptr) return;
  HuntTicket::State& st = *state_;
  std::unique_lock<std::mutex> lock(st.mu);
  st.cv.wait(lock, [&] { return st.started || st.done; });
}

bool HuntTicket::done() const {
  if (state_ == nullptr) return true;
  HuntTicket::State& st = *state_;
  std::lock_guard<std::mutex> lock(st.mu);
  return st.done;
}

void HuntTicket::Cancel() const {
  if (state_ == nullptr) return;
  state_->cancel.store(true, std::memory_order_relaxed);
}

const Status& HuntTicket::status() const {
  if (state_ == nullptr) return InvalidTicketStatus();
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->status;
}

const HuntResponse& HuntTicket::response() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->response;
}

HuntResponse HuntTicket::TakeResponse() {
  std::lock_guard<std::mutex> lock(state_->mu);
  return std::move(state_->response);
}

uint64_t HuntTicket::id() const { return state_ == nullptr ? 0 : state_->id; }

// ---- HuntService -----------------------------------------------------------

HuntService::HuntService(const storage::AuditStore* store,
                         HuntServiceOptions options)
    : store_(store), options_(options) {
  if (options_.max_concurrent == 0) options_.max_concurrent = 1;
}

HuntService::~HuntService() {
  std::vector<StatePtr> abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    for (auto& [tenant, queue] : queues_) {
      for (StatePtr& st : queue) abandoned.push_back(std::move(st));
      queue.clear();
    }
    queues_.clear();
    tenant_rr_.clear();
    queued_ = 0;
    // Running hunts observe the flag at their next poll point.
    for (const StatePtr& st : running_) {
      st->cancel.store(true, std::memory_order_relaxed);
    }
  }
  cv_.notify_all();
  for (StatePtr& st : abandoned) {
    Finish(st, Status::Cancelled("hunt service shut down"), HuntResponse{});
  }
  for (std::thread& t : workers_) t.join();
}

HuntTicket HuntService::Submit(HuntRequest request) {
  auto state = std::make_shared<HuntTicket::State>();
  if (request.timeout_micros >= 0) {
    state->deadline = std::chrono::steady_clock::now() +
                      ClampMicros(request.timeout_micros);
  }
  state->request = std::move(request);
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    state->id = next_id_++;
    ++stats_.submitted;
    if (stop_ || queued_ >= options_.max_queue) {
      rejected = true;
      ++stats_.rejected;
    } else {
      StartWorkersLocked();
      const std::string& tenant = state->request.tenant;
      std::deque<StatePtr>& queue = queues_[tenant];
      if (queue.empty()) tenant_rr_.push_back(tenant);
      queue.push_back(state);
      ++queued_;
    }
  }
  HuntTicket ticket{state};
  if (rejected) {
    Finish(state, Status::Unavailable("hunt admission queue full"),
           HuntResponse{});
  } else {
    cv_.notify_one();
  }
  return ticket;
}

Result<HuntResponse> HuntService::Run(HuntRequest request) {
  HuntTicket ticket = Submit(std::move(request));
  Status status = ticket.Wait();
  if (!status.ok()) return status;
  return ticket.TakeResponse();
}

size_t HuntService::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_ + running_.size();
}

HuntService::Stats HuntService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.tenants = queues_.size();
  return out;
}

void HuntService::StartWorkersLocked() {
  if (!workers_.empty()) return;
  workers_.reserve(options_.max_concurrent);
  for (size_t i = 0; i < options_.max_concurrent; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

HuntService::StatePtr HuntService::DequeueLocked() {
  const std::string tenant = std::move(tenant_rr_.front());
  tenant_rr_.pop_front();
  std::deque<StatePtr>& queue = queues_.at(tenant);
  StatePtr state = std::move(queue.front());
  queue.pop_front();
  --queued_;
  // Keep the tenant in rotation while it has queued work; its next
  // request waits behind every other tenant's head-of-line request.
  if (!queue.empty()) tenant_rr_.push_back(tenant);
  return state;
}

void HuntService::WorkerLoop() {
  for (;;) {
    StatePtr state;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || queued_ > 0; });
      if (queued_ == 0) return;  // stop_ set and queue drained
      state = DequeueLocked();
      running_.push_back(state);
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->started = true;
    }
    state->cv.notify_all();
    Status status = Status::OK();
    HuntResponse response;
    Process(state, &status, &response);
    // Leave running_ BEFORE finishing the ticket: a waiter observing
    // done() must also observe InFlight() without this hunt (the facade's
    // ingest guard sequences on exactly that).
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_.erase(std::find(running_.begin(), running_.end(), state));
    }
    Finish(state, std::move(status), std::move(response));
  }
}

void HuntService::Process(const StatePtr& state, Status* status,
                          HuntResponse* response) {
  // Queue-time expiry: cancellation and deadlines apply while waiting for
  // admission, not just during execution.
  if (state->cancel.load(std::memory_order_relaxed)) {
    *status = Status::Cancelled("hunt cancelled");
    return;
  }
  if (state->deadline.has_value() &&
      std::chrono::steady_clock::now() > *state->deadline) {
    *status = Status::Timeout("hunt deadline exceeded");
    return;
  }
  auto result = Execute(*state);
  if (result.ok()) {
    *response = std::move(result).value();
  } else {
    *status = result.status();
  }
}

Result<HuntResponse> HuntService::Execute(HuntTicket::State& state) const {
  const HuntRequest& req = state.request;
  HuntResponse response;
  response.dialect = req.dialect;
  Stopwatch timer;
  switch (req.dialect) {
    case QueryDialect::kTbql: {
      engine::ExecOptions opts = req.exec;
      opts.cancel = &state.cancel;
      opts.deadline = state.deadline;
      engine::TbqlExecutor executor(store_);
      auto report = executor.ExecuteText(req.text, opts);
      if (!report.ok()) return report.status();
      response.report = std::move(report).value();
      response.columns = response.report.results.columns;
      break;
    }
    case QueryDialect::kCypher: {
      graphdb::MatchOptions opts = store_->graph().options();
      opts.cancel = &state.cancel;
      auto rs = store_->graph().QueryBlocks(req.text, opts);
      if (!rs.ok()) return rs.status();
      response.columns = std::move(rs.value().columns);
      response.rows = std::move(rs.value().rows);
      break;
    }
    case QueryDialect::kSql: {
      sql::SelectOptions opts = store_->relational().options();
      opts.cancel = &state.cancel;
      auto rs = store_->relational().QueryBlocks(req.text, opts);
      if (!rs.ok()) return rs.status();
      response.columns = std::move(rs.value().columns);
      response.rows = std::move(rs.value().rows);
      break;
    }
  }
  // The raw backends poll only the cancel flag; map a deadline that
  // expired mid-query onto the cooperative cancellation path.
  if (state.deadline.has_value() &&
      std::chrono::steady_clock::now() > *state.deadline) {
    return Status::Timeout("hunt deadline exceeded");
  }
  response.seconds = timer.ElapsedSeconds();
  return response;
}

void HuntService::Finish(const StatePtr& state, Status status,
                         HuntResponse response) {
  // Count the outcome BEFORE the ticket becomes observable-done, so a
  // waiter that returns from Wait() reads up-to-date stats.
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (status.code()) {
      case StatusCode::kOk: ++stats_.completed; break;
      case StatusCode::kCancelled: ++stats_.cancelled; break;
      case StatusCode::kTimeout: ++stats_.timed_out; break;
      case StatusCode::kUnavailable: break;  // counted at rejection
      default: ++stats_.failed; break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->status = std::move(status);
    state->response = std::move(response);
    state->done = true;
  }
  state->cv.notify_all();
}

}  // namespace raptor::service
