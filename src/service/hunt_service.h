// HuntService: the asynchronous, multi-tenant query front door.
//
// The library-call API (ThreatRaptor::Hunt, TbqlExecutor::Execute) serves
// one analyst, one query at a time. Interactive hunting is a service
// problem — many concurrent investigations over one audit store — so this
// layer turns query execution into Submit()/HuntTicket:
//
//   service::HuntService svc(tr.store());
//   auto t1 = svc.Submit({.text = "proc p read file f return p, f"});
//   auto t2 = svc.Submit({.text = "MATCH (p:proc)-[e]->(f:file) RETURN f",
//                         .dialect = service::QueryDialect::kCypher});
//   t1.Wait();  // t2 ran concurrently on the admission workers
//
// Admission: up to max_concurrent read-only hunts execute at once (the
// PR-3 thread-safety contract — single-threaded mutation, race-free const
// queries — is what makes this sound); excess requests queue per tenant
// — each tenant bounded by its own queue cap, so one flooding tenant can
// never fill the global queue against everyone else — and admit weighted
// round-robin across tenants. On top of the worker count, admission is
// cost-aware: each hunt is priced at dequeue time from the executors'
// plan-time estimators (EstimateCost — seed cardinalities × pattern
// radius, pure index statistics), normalized by store size, and a hunt
// only starts while the sum of running weights fits admission_cost_budget
// (one full-store-scan-heavy hunt runs alone; cheap point hunts pack the
// full worker width). Each hunt's intra-query shard fan-out still runs on
// the shared common/thread_pool.h pool, as does the TBQL engine's pattern
// DAG, so total parallelism is bounded by the pool, not multiplied by it.
//
// Tickets are future-like handles: Wait()/WaitFor(), Cancel()
// (cooperative — polled by the engine at pattern boundaries and by both
// storage executors inside their scan loops), and a per-request deadline
// that expires queued or running hunts with Status::Timeout. Results
// stream through storage::RowCursor over chunked per-worker row blocks
// (zero-copy out of the parallel merges) instead of a materialized result
// set; the synchronous facade calls flatten a block result for
// compatibility.
//
// Epoch-coordinated ingest: the service is also the write gate for its
// store. Ingest() quiesces the admission workers (queued hunts stay
// queued, running ones drain), applies the caller's mutation, bumps the
// store epoch, and records the batch's touched entities as that epoch's
// dirty set — so ingestion and hunting interleave safely under the
// const-query thread-safety contract instead of refusing each other.
// Writer preference is bounded: at most max_consecutive_ingests mutations
// admit in a row while hunts wait, then one queued hunt is guaranteed
// through before the next writer takes the gate — hunt latency stays
// finite under a firehose source instead of starving behind it.
//
// Standing hunts: SubmitStanding() registers a query that re-executes
// against every new epoch on the same admission workers (fair with
// one-shot hunts). Each refresh delivers the rows not previously seen as
// a RowBlocks delta to the subscriber's sink, plus an alert callback when
// the delta is non-empty. Cypher refreshes run incrementally, one pass per
// pattern part: the pass rotates that part to the front and restricts its
// seeds to the nodes within the part's pattern radius of the epochs' dirty
// entities (MatchOptions::top_seed_filter), falling back to a full re-scan
// when the dirty region grows past a configured fraction of the graph.
// TBQL refreshes run incrementally too, one pass per pattern: the pass
// forces that pattern first with its entity variables pre-constrained to
// the dirty ids (ExecOptions::initial_constraints), requiring every
// pattern to match. Standing hunts have set semantics — each distinct row
// is delivered once, in the first epoch it appears — so queries should be
// monotone (LIMIT interacts poorly with re-execution and disables the
// incremental path).
//
// Multi-query optimization (fleet scale): with hundreds of standing hunts
// — technique templates stamped once per tenant — most refreshes repeat
// work. Two layers remove it. (1) Refresh dedupe: full refreshes of
// structurally-identical hunts (equal huntlib canonical keys — variable
// renaming discounted, projection labels included) at the same epoch
// execute ONCE; followers reuse the leader's response and derive their own
// per-subscription deltas from it. (2) Shared subresults: the per-epoch
// storage::QueryResultCache handed to both storage executors lets
// identical compiled data queries (shared sub-patterns across hunts)
// execute once per epoch. Both caches invalidate on every epoch bump and
// whenever Exclusive() releases the gate (retention may rebuild the store
// without an epoch).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "engine/executor.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "persist/durability.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "storage/row_block.h"
#include "storage/store.h"
#include "storage/subresult_cache.h"

namespace raptor::service {

enum class QueryDialect {
  kTbql,    // TBQL text through engine::TbqlExecutor
  kCypher,  // raw Cypher against the graph backend
  kSql,     // raw SQL against the relational backend
};

struct HuntRequest {
  std::string text;
  QueryDialect dialect = QueryDialect::kTbql;
  /// Fairness bucket: queued requests admit round-robin across tenants.
  /// Empty is the (shared) default tenant.
  std::string tenant;
  /// Relative deadline applied from Submit() — covers queue wait AND
  /// execution; expiry yields Status::Timeout. Negative: none.
  long long timeout_micros = -1;
  /// EXPLAIN ANALYZE: build a span tree for this hunt (queue wait,
  /// per-pattern execution, storage shard scans) and attach it to
  /// HuntResponse::profile. Off (the default) costs one branch per hunt;
  /// result rows are byte-identical either way.
  bool profile = false;
  /// TBQL execution options. The service owns `cancel` and `deadline`
  /// (they are overwritten from the ticket); the scheduling toggles pass
  /// through.
  engine::ExecOptions exec;
};

/// A finished hunt. Cypher/SQL rows arrive as chunked per-worker blocks
/// (`rows`, stream with cursor()); TBQL hunts carry the full engine report
/// (materialized string rows plus match metadata) in `report`.
struct HuntResponse {
  QueryDialect dialect = QueryDialect::kTbql;
  std::vector<std::string> columns;
  storage::RowBlocks<std::vector<sql::Value>> rows;
  engine::ExecReport report;
  double seconds = 0;  // execution time (excludes queue wait)
  /// Span tree for the hunt (HuntRequest::profile, or a slow-hunt log is
  /// attached); null otherwise. Render with obs::RenderProfileText/Json.
  std::shared_ptr<const obs::TraceSpan> profile;

  storage::RowCursor<std::vector<sql::Value>> cursor() const {
    return storage::RowCursor<std::vector<sql::Value>>(&rows);
  }
};

class HuntService;

/// Back-pointer from outstanding tickets to their service, severed at
/// shutdown: lets HuntTicket::Cancel (and a Wait that sees a queued
/// deadline expire) reap the hunt out of the admission queue promptly —
/// releasing its slot — without the ticket outliving the service unsafely.
/// Defined in the .cc; tickets only hold a shared_ptr.
struct ServiceHook;

/// What one ingested batch did to the store; `touched_entities` (filled by
/// the mutation callback, e.g. from storage::AppendStats) becomes the new
/// epoch's dirty-entity set for incremental standing hunts.
struct IngestReport {
  std::vector<audit::EntityId> touched_entities;
};

/// One refresh of a standing hunt, delivered to its sink.
struct StandingUpdate {
  uint64_t subscription_id = 0;
  /// Store epoch this refresh reflects (deltas cover everything up to it).
  uint64_t epoch = 0;
  std::vector<std::string> columns;
  /// Rows that first appeared in this refresh (set semantics: a row is
  /// delivered once, in the first epoch its query produces it).
  storage::RowBlocks<std::vector<sql::Value>> delta;
  /// Part-0 seeds were restricted to the dirty region (vs full re-scan).
  bool incremental = false;
  size_t total_rows = 0;  // accumulated rows delivered so far (incl. delta)
  double seconds = 0;     // refresh execution time
  /// Span tree for this refresh (HuntRequest::profile on the standing
  /// request, or a slow-hunt log is attached); null otherwise.
  std::shared_ptr<const obs::TraceSpan> profile;

  storage::RowCursor<std::vector<sql::Value>> cursor() const {
    return storage::RowCursor<std::vector<sql::Value>>(&delta);
  }
};

/// Callbacks of a standing hunt. All fire on an admission worker thread,
/// never concurrently for one subscription; any may be null.
struct StandingSink {
  /// Every refresh, including empty deltas.
  std::function<void(const StandingUpdate&)> on_update;
  /// Refreshes whose delta is non-empty — new matching activity.
  std::function<void(const StandingUpdate&)> on_alert;
  /// A refresh failed (the subscription stays registered and retries on
  /// the next epoch).
  std::function<void(const Status&)> on_error;
};

struct StandingOptions {
  /// Allow dirty-seeded incremental refreshes (Cypher per-part rotation
  /// passes; TBQL per-pattern constrained passes); off forces a full
  /// re-scan every epoch.
  bool allow_incremental = true;
  /// Fall back to a full re-scan when the dirty seed region (after radius
  /// expansion; for TBQL, the raw dirty-entity count) exceeds this
  /// fraction of the graph's nodes (entities).
  double max_dirty_fraction = 0.25;
};

struct StandingState;

/// One deduplicated full-refresh execution (MQO layer 1): the leader fills
/// it, followers wait on it. Defined in the .cc.
struct SharedRefresh;

/// Handle to a standing hunt. Copyable (all copies share one state); a
/// default-constructed handle is invalid and inert.
class StandingHandle {
 public:
  StandingHandle() = default;

  bool valid() const { return state_ != nullptr; }
  uint64_t id() const;

  /// Newest epoch a refresh has processed — delivered to the sink, or
  /// reported through on_error (a failed attempt still advances this so
  /// waiters are not stranded; the rows follow with the next successful
  /// refresh).
  uint64_t delivered_epoch() const;
  size_t total_rows() const;

  /// Per-subscription refresh attribution (MQO observability): total
  /// refreshes delivered, how many ran dirty-seeded incremental passes,
  /// and how many were served from a structural twin's execution (this
  /// subscription was a dedupe follower, not the leader).
  struct RefreshStats {
    size_t refreshes = 0;
    size_t incremental = 0;
    size_t dedup_followed = 0;
    size_t alerts = 0;
  };
  RefreshStats refresh_stats() const;

  /// Block until refreshes covering `epoch` have been processed (or the
  /// subscription is cancelled / the service shuts down). True when the
  /// epoch was reached; with a non-negative timeout, false on expiry.
  bool WaitEpoch(uint64_t epoch, long long timeout_micros = -1) const;

  /// Unsubscribe: no new refreshes are scheduled; an in-flight refresh
  /// may still deliver one final update.
  void Cancel() const;

 private:
  friend class HuntService;
  explicit StandingHandle(std::shared_ptr<StandingState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<StandingState> state_;
};

/// Future-like handle to a submitted hunt. Copyable (all copies share one
/// state); valid tickets come from HuntService::Submit. A
/// default-constructed (invalid) ticket behaves as already-finished with
/// an InvalidArgument status — only response()/TakeResponse() require
/// validity (their precondition implies it).
class HuntTicket {
 public:
  HuntTicket() = default;

  bool valid() const { return state_ != nullptr; }

  /// Block until the hunt finishes; returns its final status.
  const Status& Wait() const;

  /// Block up to `micros`; true if the hunt finished in time.
  bool WaitFor(long long micros) const;

  /// Block until the hunt leaves the admission queue (or finishes without
  /// running — rejected, cancelled, expired). Lets a client sequence
  /// against the scheduler: after this, the hunt holds a worker slot.
  void WaitStarted() const;

  bool done() const;

  /// Request cancellation: a still-queued hunt is reaped out of the
  /// admission queue immediately (its ticket finishes Cancelled and its
  /// queue slot frees without waiting for a worker); a running one stops
  /// cooperatively at the next poll point.
  void Cancel() const;

  /// Precondition: done().
  const Status& status() const;
  /// Precondition: done() && status().ok().
  const HuntResponse& response() const;
  /// Move the response out (the ticket keeps its status). Precondition:
  /// done() && status().ok().
  HuntResponse TakeResponse();

  uint64_t id() const;

 private:
  friend class HuntService;

  struct State {
    // Immutable after Submit().
    HuntRequest request;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    std::chrono::steady_clock::time_point submit_time;
    uint64_t id = 0;
    /// Non-null: this is an internal standing-hunt refresh, not a client
    /// hunt (Process runs the refresh; stats count it separately).
    std::shared_ptr<StandingState> standing;
    /// Reap-back channel to the service for queued cancellation / queued
    /// deadline expiry; null on internal tickets.
    std::shared_ptr<ServiceHook> hook;

    std::atomic<bool> cancel{false};

    /// Estimated admission weight in full-store-scan units; computed
    /// lazily at dequeue time under the service mutex (< 0: uncomputed).
    double cost_weight = -1.0;

    std::mutex mu;
    std::condition_variable cv;
    bool started = false;  // dequeued onto an admission worker
    bool done = false;
    Status status;
    HuntResponse response;
  };

  explicit HuntTicket(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  /// Pull a still-queued hunt out of the admission queue through the
  /// service hook, finishing it with `status`. A no-op once the hunt
  /// started, finished, or the service shut down.
  static void Reap(const std::shared_ptr<State>& state, Status status);

  std::shared_ptr<State> state_;
};

/// Per-tenant admission policy; tenants without an explicit policy get
/// weight 1 and the default queue cap.
struct TenantPolicy {
  /// Weighted round-robin share: a tenant with weight w admits up to w
  /// queued hunts per rotation before yielding to the next tenant.
  int weight = 1;
  /// Queued-request cap for this tenant; 0 = the service-wide default
  /// (HuntServiceOptions::max_queue_per_tenant).
  size_t max_queued = 0;
};

struct HuntServiceOptions {
  /// Concurrent hunts admitted at once (= admission worker threads).
  size_t max_concurrent = 4;
  /// Queued (not yet admitted) requests across all tenants; Submit beyond
  /// this finishes the ticket immediately with Status::Unavailable.
  size_t max_queue = 1024;
  /// Default per-tenant queued-request cap; a tenant at its cap gets
  /// Status::Unavailable while other tenants keep admitting — one flooder
  /// can no longer fill max_queue against everyone. 0 = auto:
  /// max(1, max_queue / 8). Override per tenant via tenant_policies.
  size_t max_queue_per_tenant = 0;
  /// Explicit per-tenant weights and caps, keyed by tenant name (the empty
  /// string is the default tenant).
  std::map<std::string, TenantPolicy> tenant_policies;
  /// Cost-aware admission: a dequeued hunt only starts while the sum of
  /// running hunts' estimated weights (each in [min_cost_weight, 1], 1 ≈
  /// one full scan of the store, from the executors' plan-time
  /// EstimateCost) stays within this budget; a hunt always admits when
  /// nothing is running. <= 0 disables the cost gate (pure worker-count
  /// admission, the legacy behavior).
  double admission_cost_budget = 2.0;
  /// Floor for a hunt's normalized cost weight, so even point lookups
  /// consume some budget and the effective width stays bounded by
  /// admission_cost_budget / min_cost_weight.
  double min_cost_weight = 0.05;
  /// Bounded writer preference: at most this many consecutive gate
  /// acquisitions (Ingest/Exclusive) admit while hunts sit queued; then
  /// one hunt is guaranteed through before the next writer. 0 = unbounded
  /// (the legacy starvation-prone preference, kept for benchmarks).
  size_t max_consecutive_ingests = 4;
  /// Idle (no queued or running hunts) tenant entries retained for their
  /// counters; least-recently-active entries beyond this are pruned so
  /// the tenant map stays bounded at millions-of-users scale.
  size_t max_idle_tenants = 64;
  /// Per-epoch dirty-entity sets retained for incremental standing hunts;
  /// a subscriber further behind than this falls back to a full re-scan.
  size_t max_dirty_epochs = 64;
  /// Multi-query optimization, layer 1: full refreshes of
  /// structurally-identical standing hunts (equal huntlib canonical keys,
  /// typically the same technique template across tenants) at the same
  /// epoch execute once and fan the result out to every subscriber.
  bool mqo_dedup = true;
  /// Multi-query optimization, layer 2: hand the service-owned per-epoch
  /// subresult caches to the storage executors, so identical compiled data
  /// queries — common sub-patterns factored out across hunts — execute
  /// once per epoch.
  bool mqo_shared_subresults = true;
  /// Epoch counter start value. A restored service resumes at its
  /// snapshot's epoch so standing-hunt watermarks and checkpoint intervals
  /// keep their meaning across restarts.
  uint64_t initial_epoch = 0;
  /// Persistence configuration. The service is the write gate, so it is
  /// also where durability lives; the ThreatRaptor facade reads this to
  /// open a persist::Checkpointer and attach its WAL. An empty data_dir
  /// (the default) keeps the pre-durability in-memory behavior.
  persist::DurabilityOptions durability;
};

class HuntService {
 public:
  /// `store` must outlive the service and must not be mutated while hunts
  /// are queued or running (the const-query thread-safety contract).
  explicit HuntService(const storage::AuditStore* store,
                       HuntServiceOptions options = {});

  /// Shutdown() + joins the admission workers.
  ~HuntService();

  HuntService(const HuntService&) = delete;
  HuntService& operator=(const HuntService&) = delete;

  /// Stop admitting: queued hunts finish Cancelled("hunt service shut
  /// down"), running ones are requested to cancel, standing subscriptions
  /// detach, and later Submits are refused with the same status (counted
  /// as Stats::rejected_shutdown, not rejected). Idempotent; the
  /// destructor calls it and then joins the workers.
  void Shutdown();

  /// Enqueue a hunt; never blocks on execution. The returned ticket is
  /// already done() on admission rejection: Status::Unavailable when the
  /// global queue or the tenant's own cap is full, Status::Cancelled after
  /// Shutdown().
  HuntTicket Submit(HuntRequest request);

  /// Convenience synchronous path: Submit + Wait + TakeResponse.
  Result<HuntResponse> Run(HuntRequest request);

  /// Apply a store mutation under the epoch gate: holds off new hunt
  /// admissions, waits for running hunts to drain (queued hunts stay
  /// queued — nothing is refused), runs `mutate` on the calling thread,
  /// then bumps the store epoch, records the report's touched entities as
  /// the epoch's dirty set, and schedules a refresh of every standing
  /// hunt. Returns the new epoch. Concurrent Ingest calls serialize;
  /// admissions resume as soon as the mutation finishes. A failed
  /// mutation does not bump the epoch; the caller owns any partial-append
  /// cleanup.
  Result<uint64_t> Ingest(const std::function<Status(IngestReport*)>& mutate);

  /// Write-ahead variant: `wal_record` is appended to the attached WAL
  /// under the gate BEFORE `mutate` runs, so an acknowledged mutation is
  /// always recoverable. A failed append fails the ingest without running
  /// the mutation (and without bumping the epoch); null `wal_record` (or
  /// no attached WAL) degrades to the plain overload.
  Result<uint64_t> Ingest(const std::function<Status(IngestReport*)>& mutate,
                          const persist::WalRecord* wal_record);

  /// Run `fn` with the same exclusivity as a mutation — admissions held
  /// off, running hunts drained — but WITHOUT the epoch side effects: no
  /// epoch bump, no dirty set, no standing refreshes. This is the
  /// checkpoint/retention path: it must observe (and may rebuild) the
  /// store while nothing reads it, yet must not wake subscribers over a
  /// store whose visible contents did not change.
  Status Exclusive(const std::function<Status()>& fn);

  /// Attach (or detach, with nullptr) the write-ahead log appends go to.
  /// The writer is owned by the caller and must outlive the attachment.
  void AttachWal(persist::WalWriter* wal);

  /// Export every live standing hunt's delivered-row memory for a
  /// snapshot, keyed by subscription identity, rows sorted for
  /// deterministic bytes. Call under Exclusive() or the write gate.
  std::vector<persist::StandingSeen> ExportStandingSeen() const;

  /// Pre-arm standing subscriptions about to be resubmitted after a
  /// restore: when SubmitStanding sees a request whose identity matches a
  /// seed, the subscription starts with the seed's seen-set and
  /// accumulated total instead of empty — its baseline refresh then
  /// delivers only rows the pre-restart run never saw.
  void SeedStanding(std::vector<persist::StandingSeen> seeds);

  /// Subscription identity used by ExportStandingSeen/SeedStanding.
  static std::string StandingKey(const HuntRequest& request);

  /// Store epochs applied so far (one per successful Ingest).
  uint64_t epoch() const;

  /// Register a standing hunt: `request` re-executes against every new
  /// epoch (an initial refresh against the current store runs
  /// immediately), streaming row deltas and alerts into `sink`. The
  /// request's deadline applies per refresh; its tenant takes part in
  /// admission fairness.
  StandingHandle SubmitStanding(HuntRequest request, StandingSink sink,
                                StandingOptions options = {});

  /// Registered (not cancelled) standing hunts.
  size_t standing_count() const;

  /// Queued + running hunts (Ingest waits for running ones to drain).
  size_t InFlight() const;

  struct Stats {
    size_t submitted = 0;
    size_t completed = 0;   // finished OK
    size_t failed = 0;      // finished with a non-OK, non-cancel status
    size_t cancelled = 0;
    size_t timed_out = 0;
    size_t rejected = 0;    // admission rejections (global or tenant cap)
    size_t rejected_shutdown = 0;  // Submits refused after Shutdown()
    size_t tenants = 0;     // distinct tenants seen (survives map pruning)
    size_t ingests = 0;     // successful epoch-gated mutations
    size_t wal_records = 0; // mutations logged write-ahead
    size_t standing_refreshes = 0;    // standing executions completed
    size_t standing_incremental = 0;  // ... that ran dirty-seeded passes
    size_t standing_alerts = 0;       // ... that delivered a non-empty delta
    size_t standing_dedup_hits = 0;   // refreshes served from a structural
                                      // twin's execution (MQO layer 1)
    size_t subresult_hits = 0;        // shared-subresult cache hits across
                                      // both backends (MQO layer 2)
  };
  Stats stats() const;

  /// Latency distribution summary, read out of a log-bucketed histogram
  /// (quantiles are bucket-resolution approximations, ~±25%).
  struct LatencySummary {
    size_t count = 0;
    double p50_micros = 0;
    double p90_micros = 0;
    double p99_micros = 0;
    double mean_micros = 0;
    double max_micros = 0;
  };

  /// Per-tenant slice of the metrics surface.
  struct TenantMetrics {
    std::string tenant;
    int weight = 1;
    size_t max_queued = 0;  // resolved cap
    size_t queued = 0;
    size_t running = 0;
    size_t submitted = 0;
    size_t completed = 0;
    size_t rejected = 0;
    size_t cancelled = 0;
    size_t timed_out = 0;
    size_t failed = 0;
    double qps = 0;  // submitted / service uptime
  };

  /// The ops-facing snapshot: queue/pool occupancy, admission cost state,
  /// tenant tracking, epoch lag (how far the slowest live standing hunt
  /// trails the store epoch), writer-gate contention, and hunt latency /
  /// queue wait distributions for executed client hunts. Exported by
  /// ThreatRaptor::service_metrics() and the CLI's `hunt --stats`.
  struct Metrics {
    size_t queue_depth = 0;
    size_t running = 0;
    size_t workers = 0;
    double running_cost = 0;
    double cost_budget = 0;
    size_t tracked_tenants = 0;   // live tenant map entries (bounded)
    size_t distinct_tenants = 0;  // ever seen (survives pruning)
    uint64_t epoch = 0;
    uint64_t epoch_lag = 0;
    size_t standing = 0;
    size_t gate_acquires = 0;     // Ingest/Exclusive gate acquisitions
    double gate_wait_seconds_total = 0;
    double gate_wait_seconds_max = 0;
    size_t consecutive_ingests = 0;  // current writer-preference window
    double uptime_seconds = 0;
    LatencySummary hunt_latency;  // Submit -> done, completed hunts
    LatencySummary queue_wait;    // Submit -> worker admission
    std::vector<TenantMetrics> tenants;
  };
  Metrics metrics() const;

  /// Attach (or, with an empty path / negative threshold, detach) a
  /// structured slow-hunt log: every hunt or standing refresh whose
  /// execution latency reaches `threshold_micros` appends one JSONL record
  /// to `path` with the hunt's span tree inlined. While a log is attached,
  /// tracing is forced on for all hunts (span construction is O(workers)
  /// per hunt, never per row).
  void ConfigureSlowLog(const std::string& path, long long threshold_micros);

  /// Records appended by the attached slow-hunt log (0 when detached).
  size_t slow_hunts_logged() const;

  /// Register this service's telemetry with `registry` under raptor_hunt_*
  /// names: lifecycle and admission counters, queue/cost/gate gauges,
  /// standing-hunt and MQO counters, latency histograms, and per-tenant
  /// labeled series. Populate-on-demand: call right before rendering.
  void CollectMetrics(obs::MetricsRegistry* registry) const;

  /// Replace `tenant`'s admission policy at runtime, without restarting
  /// the service: the queue cap applies to the tenant's next Submit and
  /// the weight to its next weighted-round-robin rotation (the current
  /// rotation's remaining credits are untouched). Already-queued requests
  /// are never evicted — a tightened cap only rejects new arrivals. The
  /// policy is also recorded in the service options, so a tenant entry
  /// pruned while idle and later recreated keeps it.
  void SetTenantPolicy(const std::string& tenant, TenantPolicy policy);

  size_t max_concurrent() const { return options_.max_concurrent; }

 private:
  friend class HuntTicket;  // reap-back of queued tickets (Cancel/Wait)

  using StatePtr = std::shared_ptr<HuntTicket::State>;
  using StandingPtr = std::shared_ptr<StandingState>;

  /// Admission bookkeeping for one tenant. Entries are created on first
  /// Submit and pruned (keeping max_idle_tenants LRU survivors) once idle,
  /// so the map stays bounded; the distinct-tenant count lives in a
  /// counter instead. Guarded by mu_.
  struct TenantState {
    int weight = 1;
    size_t max_queued = 0;  // resolved cap (policy or service default)
    std::deque<StatePtr> queue;
    int credits = 0;    // WRR: admissions left in the current rotation
    bool in_rr = false;
    size_t running = 0;
    uint64_t last_active = 0;  // activity sequence, for LRU pruning
    // Lifetime counters (lost if the idle entry is pruned; the aggregate
    // Stats counters are authoritative).
    size_t submitted = 0;
    size_t completed = 0;
    size_t rejected = 0;
    size_t cancelled = 0;
    size_t timed_out = 0;
    size_t failed = 0;
  };

  void StartWorkersLocked();
  void WorkerLoop();
  /// Find-or-create the tenant entry, stamping policy on creation and
  /// counting first sightings. Precondition: mu_ held.
  TenantState& TenantLocked(const std::string& tenant);
  /// Weighted-round-robin admission: pop the next affordable request
  /// across tenant queues, respecting the cost budget against running
  /// hunts. Null when every queue head is currently too expensive (the
  /// caller waits for capacity). Precondition: queued_ > 0, mu_ held, no
  /// mutation holds the store (the lazy cost estimate reads index stats).
  StatePtr AdmitLocked();
  /// `state`'s admission weight, estimated on first use (plan-time
  /// EstimateCost normalized by store size, clamped to
  /// [min_cost_weight, 1]). Precondition: mu_ held, no mutation active.
  double CostWeightLocked(HuntTicket::State& state);
  /// A waiting writer currently outranks hunt admission (bounded
  /// preference not yet exhausted). Precondition: mu_ held.
  bool WriterPreferredLocked() const;
  /// Remove a still-queued `state` and finish it with `status` (ticket
  /// Cancel / queued-deadline expiry). False: not queued (already
  /// admitted, finished, or never enqueued).
  bool ReapQueued(const StatePtr& state, Status status);
  /// Drop least-recently-active idle tenant entries beyond
  /// max_idle_tenants. Precondition: mu_ held.
  void PruneIdleTenantsLocked();
  /// Enqueue `state` into its tenant's queue (creating the entry) and
  /// rotate the tenant into the WRR ring. Precondition: mu_ held.
  void EnqueueLocked(const StatePtr& state);
  /// Queue a refresh of `sub` unless one is already queued or running.
  /// Precondition: mu_ held.
  void ScheduleStandingLocked(const StandingPtr& sub);
  void Process(const StatePtr& state, Status* status, HuntResponse* response);
  Result<HuntResponse> Execute(HuntTicket::State& state,
                               obs::TraceSpan* trace) const;
  /// Shared execution path for client hunts and standing refreshes.
  /// `seed_filter` (Cypher only) restricts part-0 seeds for incremental
  /// standing refreshes. `trace` (nullable) roots the execution's span
  /// subtree (per-pattern, per-shard spans hang under it).
  Result<HuntResponse> ExecuteQuery(
      const HuntRequest& request, const std::atomic<bool>* cancel,
      std::optional<std::chrono::steady_clock::time_point> deadline,
      const std::unordered_set<graphdb::NodeId>* seed_filter,
      obs::TraceSpan* trace) const;
  /// Copy of the attached slow-hunt log (null when detached), taken under
  /// mu_ so ConfigureSlowLog cannot destroy a log mid-write.
  std::shared_ptr<obs::SlowHuntLog> SlowLogSnapshot() const;
  /// Execute one standing refresh and deliver its update to the sink.
  void RunStanding(const StandingPtr& sub);
  /// Layered BFS from the dirty entities' graph nodes: `bfs_order` lists
  /// discovered nodes grouped by hop distance, `hop_boundary[h]` = how
  /// many of them lie within h hops, up to `max_hops`. False: the region
  /// outgrew `max_fraction` of the graph — do a full re-scan.
  bool ExpandDirtyRegion(const std::vector<audit::EntityId>& dirty,
                         size_t max_hops, double max_fraction,
                         std::vector<graphdb::NodeId>* bfs_order,
                         std::vector<size_t>* hop_boundary) const;
  /// Incremental Cypher refresh: one pass per pattern part, rotating that
  /// part to the front with its seeds restricted to the dirty region
  /// expanded by the part's own radius. True: the query was eligible and
  /// the passes ran (`status` carries any execution failure); false: not
  /// eligible (unparseable, LIMIT, region too large) — run a full refresh.
  bool TryIncrementalCypher(
      StandingState& sub, const std::vector<audit::EntityId>& dirty,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      std::vector<HuntResponse>* responses, Status* status,
      obs::TraceSpan* trace) const;
  /// Incremental TBQL refresh: one pass per pattern, forcing that pattern
  /// first with its entity variables pre-constrained to the dirty ids and
  /// every pattern required to match. Same contract as the Cypher variant;
  /// additionally ineligible with time windows (non-monotone) or before a
  /// full refresh has matched every pattern (excessive-pattern tolerance
  /// makes partial joins non-monotone).
  bool TryIncrementalTbql(
      StandingState& sub, const std::vector<audit::EntityId>& dirty,
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      std::vector<HuntResponse>* responses, Status* status,
      obs::TraceSpan* trace) const;
  void Finish(const StatePtr& state, Status status, HuntResponse response);
  /// Acquire/release exclusive store access (writer-preferring: waiting
  /// here holds off new admissions until running hunts drain). Shared by
  /// Ingest and Exclusive.
  Status AcquireGate();
  void ReleaseGate();

  const storage::AuditStore* store_;
  HuntServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Wakes Ingest() waiters when the last running hunt drains.
  std::condition_variable ingest_cv_;
  /// Severed (service = nullptr, under hook_->mu) as the first step of
  /// Shutdown(); every client ticket holds a copy. Lock order:
  /// hook_->mu -> mu_ -> State::mu, never the reverse.
  std::shared_ptr<ServiceHook> hook_;
  std::map<std::string, TenantState, std::less<>> tenants_;
  std::deque<std::string> tenant_rr_;  // WRR ring: tenants with queued work
  std::vector<StatePtr> running_;
  double running_cost_ = 0;  // sum of running hunts' admission weights
  size_t queued_ = 0;
  size_t distinct_tenants_ = 0;  // first sightings; survives map pruning
  uint64_t activity_seq_ = 0;
  uint64_t next_id_ = 1;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  Stats stats_;
  std::chrono::steady_clock::time_point start_time_;
  /// Latency distributions in microseconds (obs::LogHistogram — the shared
  /// log2-bucketed histogram, also what CollectMetrics exports).
  obs::LogHistogram hunt_latency_;  // Submit -> done, completed client hunts
  obs::LogHistogram queue_wait_;    // Submit -> admission, client hunts
  /// Structured slow-hunt log; null when detached. The shared_ptr is
  /// copied out under mu_ so a concurrent ConfigureSlowLog cannot destroy
  /// a log a finishing hunt is writing to.
  std::shared_ptr<obs::SlowHuntLog> slow_log_;

  // --- epoch-coordinated ingest (guarded by mu_) ---
  uint64_t epoch_ = 0;
  bool ingest_active_ = false;    // a mutation holds the store
  size_t ingests_waiting_ = 0;    // writers queued for the gate
  size_t consecutive_ingests_ = 0;  // gate acquisitions since a hunt admitted
  size_t gate_acquires_ = 0;
  double gate_wait_total_ = 0;    // seconds writers spent blocked at the gate
  double gate_wait_max_ = 0;
  struct DirtyEpoch {
    uint64_t epoch = 0;
    std::vector<audit::EntityId> entities;
  };
  std::deque<DirtyEpoch> dirty_;  // newest at back, bounded

  // --- standing hunts (guarded by mu_) ---
  std::vector<StandingPtr> standing_;
  uint64_t next_standing_id_ = 1;
  /// Restored seen-sets waiting for their subscription to be resubmitted,
  /// keyed by StandingKey. Guarded by mu_.
  std::map<std::string, persist::StandingSeen> standing_seeds_;

  // --- multi-query optimization ---
  /// Layer 1: single-flight full refreshes, keyed by canonical query key +
  /// target epoch. Map guarded by mu_; each entry synchronizes itself.
  /// Cleared on every epoch bump and gate release.
  std::map<std::string, std::shared_ptr<SharedRefresh>> refresh_cache_;
  /// Layer 2: per-epoch shared-subresult caches handed to the storage
  /// executors for every dialect. Internally synchronized; mutable because
  /// the (logically const) query path populates them.
  mutable storage::QueryResultCache<graphdb::GraphBlockResult> graph_cache_;
  mutable storage::QueryResultCache<sql::BlockResultSet> sql_cache_;

  // --- durability (append serialized by the write gate) ---
  persist::WalWriter* wal_ = nullptr;
};

}  // namespace raptor::service
