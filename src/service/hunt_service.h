// HuntService: the asynchronous, multi-tenant query front door.
//
// The library-call API (ThreatRaptor::Hunt, TbqlExecutor::Execute) serves
// one analyst, one query at a time. Interactive hunting is a service
// problem — many concurrent investigations over one audit store — so this
// layer turns query execution into Submit()/HuntTicket:
//
//   service::HuntService svc(tr.store());
//   auto t1 = svc.Submit({.text = "proc p read file f return p, f"});
//   auto t2 = svc.Submit({.text = "MATCH (p:proc)-[e]->(f:file) RETURN f",
//                         .dialect = service::QueryDialect::kCypher});
//   t1.Wait();  // t2 ran concurrently on the admission workers
//
// Admission: up to max_concurrent read-only hunts execute at once (the
// PR-3 thread-safety contract — single-threaded mutation, race-free const
// queries — is what makes this sound); excess requests queue per tenant
// and admit round-robin across tenants, so one chatty tenant cannot
// starve the others. Each hunt's intra-query shard fan-out still runs on
// the shared common/thread_pool.h pool, as does the TBQL engine's pattern
// DAG, so total parallelism is bounded by the pool, not multiplied by it.
//
// Tickets are future-like handles: Wait()/WaitFor(), Cancel()
// (cooperative — polled by the engine at pattern boundaries and by both
// storage executors inside their scan loops), and a per-request deadline
// that expires queued or running hunts with Status::Timeout. Results
// stream through storage::RowCursor over chunked per-worker row blocks
// (zero-copy out of the parallel merges) instead of a materialized result
// set; the synchronous facade calls flatten a block result for
// compatibility.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/executor.h"
#include "storage/row_block.h"
#include "storage/store.h"

namespace raptor::service {

enum class QueryDialect {
  kTbql,    // TBQL text through engine::TbqlExecutor
  kCypher,  // raw Cypher against the graph backend
  kSql,     // raw SQL against the relational backend
};

struct HuntRequest {
  std::string text;
  QueryDialect dialect = QueryDialect::kTbql;
  /// Fairness bucket: queued requests admit round-robin across tenants.
  /// Empty is the (shared) default tenant.
  std::string tenant;
  /// Relative deadline applied from Submit() — covers queue wait AND
  /// execution; expiry yields Status::Timeout. Negative: none.
  long long timeout_micros = -1;
  /// TBQL execution options. The service owns `cancel` and `deadline`
  /// (they are overwritten from the ticket); the scheduling toggles pass
  /// through.
  engine::ExecOptions exec;
};

/// A finished hunt. Cypher/SQL rows arrive as chunked per-worker blocks
/// (`rows`, stream with cursor()); TBQL hunts carry the full engine report
/// (materialized string rows plus match metadata) in `report`.
struct HuntResponse {
  QueryDialect dialect = QueryDialect::kTbql;
  std::vector<std::string> columns;
  storage::RowBlocks<std::vector<sql::Value>> rows;
  engine::ExecReport report;
  double seconds = 0;  // execution time (excludes queue wait)

  storage::RowCursor<std::vector<sql::Value>> cursor() const {
    return storage::RowCursor<std::vector<sql::Value>>(&rows);
  }
};

class HuntService;

/// Future-like handle to a submitted hunt. Copyable (all copies share one
/// state); valid tickets come from HuntService::Submit. A
/// default-constructed (invalid) ticket behaves as already-finished with
/// an InvalidArgument status — only response()/TakeResponse() require
/// validity (their precondition implies it).
class HuntTicket {
 public:
  HuntTicket() = default;

  bool valid() const { return state_ != nullptr; }

  /// Block until the hunt finishes; returns its final status.
  const Status& Wait() const;

  /// Block up to `micros`; true if the hunt finished in time.
  bool WaitFor(long long micros) const;

  /// Block until the hunt leaves the admission queue (or finishes without
  /// running — rejected, cancelled, expired). Lets a client sequence
  /// against the scheduler: after this, the hunt holds a worker slot.
  void WaitStarted() const;

  bool done() const;

  /// Request cooperative cancellation: a queued hunt finishes Cancelled
  /// without executing, a running one stops at the next poll point.
  void Cancel() const;

  /// Precondition: done().
  const Status& status() const;
  /// Precondition: done() && status().ok().
  const HuntResponse& response() const;
  /// Move the response out (the ticket keeps its status). Precondition:
  /// done() && status().ok().
  HuntResponse TakeResponse();

  uint64_t id() const;

 private:
  friend class HuntService;

  struct State {
    // Immutable after Submit().
    HuntRequest request;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    uint64_t id = 0;

    std::atomic<bool> cancel{false};

    std::mutex mu;
    std::condition_variable cv;
    bool started = false;  // dequeued onto an admission worker
    bool done = false;
    Status status;
    HuntResponse response;
  };

  explicit HuntTicket(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

struct HuntServiceOptions {
  /// Concurrent hunts admitted at once (= admission worker threads).
  size_t max_concurrent = 4;
  /// Queued (not yet admitted) requests across all tenants; Submit beyond
  /// this finishes the ticket immediately with Status::Unavailable.
  size_t max_queue = 1024;
};

class HuntService {
 public:
  /// `store` must outlive the service and must not be mutated while hunts
  /// are queued or running (the const-query thread-safety contract).
  explicit HuntService(const storage::AuditStore* store,
                       HuntServiceOptions options = {});

  /// Cancels queued hunts, requests cancellation of running ones, and
  /// joins the admission workers.
  ~HuntService();

  HuntService(const HuntService&) = delete;
  HuntService& operator=(const HuntService&) = delete;

  /// Enqueue a hunt; never blocks on execution. The returned ticket is
  /// already done() on admission rejection (queue full).
  HuntTicket Submit(HuntRequest request);

  /// Convenience synchronous path: Submit + Wait + TakeResponse.
  Result<HuntResponse> Run(HuntRequest request);

  /// Queued + running hunts (the facade refuses to mutate the store while
  /// this is non-zero).
  size_t InFlight() const;

  struct Stats {
    size_t submitted = 0;
    size_t completed = 0;   // finished OK
    size_t failed = 0;      // finished with a non-OK, non-cancel status
    size_t cancelled = 0;
    size_t timed_out = 0;
    size_t rejected = 0;    // admission-queue overflow
    size_t tenants = 0;     // distinct tenants seen
  };
  Stats stats() const;

  size_t max_concurrent() const { return options_.max_concurrent; }

 private:
  using StatePtr = std::shared_ptr<HuntTicket::State>;

  void StartWorkersLocked();
  void WorkerLoop();
  /// Pop the next request round-robin across tenant queues. Precondition:
  /// queued_ > 0, mu_ held.
  StatePtr DequeueLocked();
  void Process(const StatePtr& state, Status* status, HuntResponse* response);
  Result<HuntResponse> Execute(HuntTicket::State& state) const;
  void Finish(const StatePtr& state, Status status, HuntResponse response);

  const storage::AuditStore* store_;
  HuntServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::deque<StatePtr>> queues_;  // per tenant
  std::deque<std::string> tenant_rr_;  // tenants with queued work
  std::vector<StatePtr> running_;
  size_t queued_ = 0;
  uint64_t next_id_ = 1;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  Stats stats_;
};

}  // namespace raptor::service
