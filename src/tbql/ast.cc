#include "tbql/ast.h"

#include "common/strings.h"

namespace raptor::tbql {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

namespace {

std::string QuoteValue(const std::string& value, bool is_number) {
  if (is_number) return value;
  return "\"" + value + "\"";
}

}  // namespace

std::unique_ptr<AttrExpr> AttrExpr::Clone() const {
  auto e = std::make_unique<AttrExpr>();
  e->kind = kind;
  e->qualifier = qualifier;
  e->attr = attr;
  e->op = op;
  e->value = value;
  e->value_is_number = value_is_number;
  e->values = values;
  e->negated = negated;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  return e;
}

std::string AttrExpr::ToString() const {
  switch (kind) {
    case AttrExprKind::kCompare: {
      std::string a = qualifier.empty() ? attr : qualifier + "." + attr;
      return a + " " + CompareOpName(op) + " " + QuoteValue(value, value_is_number);
    }
    case AttrExprKind::kBareValue:
      return std::string(negated ? "!" : "") + QuoteValue(value, value_is_number);
    case AttrExprKind::kInList: {
      std::string a = qualifier.empty() ? attr : qualifier + "." + attr;
      std::vector<std::string> qs;
      qs.reserve(values.size());
      for (const std::string& v : values) qs.push_back("\"" + v + "\"");
      return a + (negated ? " not in (" : " in (") + Join(qs, ", ") + ")";
    }
    case AttrExprKind::kAnd:
      return "(" + lhs->ToString() + " && " + rhs->ToString() + ")";
    case AttrExprKind::kOr:
      return "(" + lhs->ToString() + " || " + rhs->ToString() + ")";
    case AttrExprKind::kNot:
      return "!(" + lhs->ToString() + ")";
  }
  return "?";
}

std::unique_ptr<OpExpr> OpExpr::Clone() const {
  auto e = std::make_unique<OpExpr>();
  e->kind = kind;
  e->op = op;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  return e;
}

std::string OpExpr::ToString() const {
  switch (kind) {
    case OpExprKind::kOp: return op;
    case OpExprKind::kNot: return "!" + lhs->ToString();
    case OpExprKind::kAnd: return "(" + lhs->ToString() + " && " + rhs->ToString() + ")";
    case OpExprKind::kOr: return "(" + lhs->ToString() + " || " + rhs->ToString() + ")";
  }
  return "?";
}

bool OpExpr::Matches(std::string_view op_name) const {
  switch (kind) {
    case OpExprKind::kOp: return op == op_name;
    case OpExprKind::kNot: return !lhs->Matches(op_name);
    case OpExprKind::kAnd: return lhs->Matches(op_name) && rhs->Matches(op_name);
    case OpExprKind::kOr: return lhs->Matches(op_name) || rhs->Matches(op_name);
  }
  return false;
}

void OpExpr::CollectOps(std::vector<std::string>* out) const {
  switch (kind) {
    case OpExprKind::kOp:
      out->push_back(op);
      break;
    case OpExprKind::kNot:
      break;  // negated ops do not contribute positive candidates
    case OpExprKind::kAnd:
    case OpExprKind::kOr:
      lhs->CollectOps(out);
      rhs->CollectOps(out);
      break;
  }
}

std::string TimeWindow::ToString() const {
  switch (kind) {
    case WindowKind::kRange:
      return StrFormat("from %lld to %lld", static_cast<long long>(from),
                       static_cast<long long>(to));
    case WindowKind::kAt:
      return StrFormat("at %lld", static_cast<long long>(from));
    case WindowKind::kBefore:
      return StrFormat("before %lld", static_cast<long long>(from));
    case WindowKind::kAfter:
      return StrFormat("after %lld", static_cast<long long>(from));
    case WindowKind::kLast:
      return StrFormat("last %lld sec",
                       static_cast<long long>(last_amount / 1000000));
  }
  return "?";
}

std::string EntityRef::ToString(bool with_filter) const {
  std::string out = std::string(audit::EntityTypeName(type)) + " " + id;
  if (with_filter && filter) out += "[" + filter->ToString() + "]";
  return out;
}

std::string PathSpec::ToString() const {
  if (!is_path) return "";
  std::string out = fuzzy_arrow ? "~>" : "->";
  if (!(min_len == 1 && max_len == 1)) {
    out += "(";
    if (min_len != 1 || max_len < 0) out += std::to_string(min_len);
    out += "~";
    if (max_len >= 0) out += std::to_string(max_len);
    out += ")";
  }
  return out;
}

std::string Pattern::ToString() const {
  std::string out = subject.ToString();
  if (path.is_path) {
    out += " " + path.ToString();
    if (op) out += "[" + op->ToString() + "]";
  } else {
    out += " " + (op ? op->ToString() : std::string("?"));
  }
  out += " " + object.ToString();
  if (!id.empty()) {
    out += " as " + id;
    if (event_filter) out += "[" + event_filter->ToString() + "]";
  }
  if (window.has_value()) out += " " + window->ToString();
  return out;
}

std::string TemporalRel::ToString() const {
  std::string out = "with " + left + " ";
  switch (op) {
    case TemporalOp::kBefore: out += "before"; break;
    case TemporalOp::kAfter: out += "after"; break;
    case TemporalOp::kWithin: out += "within"; break;
  }
  if (min_gap >= 0 || max_gap >= 0) {
    out += StrFormat("[%lld-%lld sec]",
                     static_cast<long long>(min_gap < 0 ? 0 : min_gap / 1000000),
                     static_cast<long long>(max_gap < 0 ? 0 : max_gap / 1000000));
  }
  return out + " " + right;
}

std::string AttrRel::ToString() const {
  return "with " + left_qualifier + "." + left_attr + " " +
         CompareOpName(op) + " " + right_qualifier + "." + right_attr;
}

std::string ReturnItem::ToString() const {
  return attr.empty() ? id : id + "." + attr;
}

std::string TbqlQuery::ToString() const {
  std::vector<std::string> lines;
  for (const auto& f : global_attr_filters) lines.push_back(f->ToString());
  for (const TimeWindow& w : global_windows) lines.push_back(w.ToString());
  for (const Pattern& p : patterns) lines.push_back(p.ToString());
  std::vector<std::string> rels;
  for (const TemporalRel& r : temporal_rels) {
    std::string s = r.ToString();
    rels.push_back(s.substr(5));  // strip the leading "with "
  }
  for (const AttrRel& r : attr_rels) {
    std::string s = r.ToString();
    rels.push_back(s.substr(5));
  }
  if (!rels.empty()) lines.push_back("with " + Join(rels, ", "));
  std::string ret = "return ";
  if (distinct) ret += "distinct ";
  std::vector<std::string> items;
  items.reserve(returns.size());
  for (const ReturnItem& r : returns) items.push_back(r.ToString());
  ret += Join(items, ", ");
  lines.push_back(std::move(ret));
  return Join(lines, "\n");
}

}  // namespace raptor::tbql
