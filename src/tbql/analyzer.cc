#include "tbql/analyzer.h"

#include "common/strings.h"

namespace raptor::tbql {

bool IsValidAttribute(EntityType type, std::string_view attr) {
  if (attr == "user" || attr == "group") return true;
  switch (type) {
    case EntityType::kFile:
      return attr == "name" || attr == "path";
    case EntityType::kProcess:
      return attr == "pid" || attr == "exename" || attr == "cmd";
    case EntityType::kNetwork:
      return attr == "srcip" || attr == "srcport" || attr == "dstip" ||
             attr == "dstport" || attr == "protocol";
  }
  return false;
}

bool IsValidEventAttribute(std::string_view attr) {
  return attr == "id" || attr == "op" || attr == "start_time" ||
         attr == "end_time" || attr == "amount" || attr == "failure_code";
}

namespace {

/// Validate attribute references inside an entity filter expression.
Status ValidateEntityFilter(const AttrExpr& e, EntityType type,
                            const std::string& entity_id) {
  switch (e.kind) {
    case AttrExprKind::kBareValue:
      return Status::OK();  // default-attribute sugar
    case AttrExprKind::kCompare:
    case AttrExprKind::kInList: {
      if (!e.qualifier.empty() && e.qualifier != entity_id) {
        return Status::InvalidArgument(
            "entity filter may not reference other entities: " + e.ToString());
      }
      if (!IsValidAttribute(type, e.attr)) {
        return Status::InvalidArgument(StrFormat(
            "attribute '%s' is not valid for %s entities", e.attr.c_str(),
            audit::EntityTypeName(type)));
      }
      return Status::OK();
    }
    case AttrExprKind::kAnd:
    case AttrExprKind::kOr:
      RAPTOR_RETURN_NOT_OK(ValidateEntityFilter(*e.lhs, type, entity_id));
      return ValidateEntityFilter(*e.rhs, type, entity_id);
    case AttrExprKind::kNot:
      return ValidateEntityFilter(*e.lhs, type, entity_id);
  }
  return Status::OK();
}

Status RegisterEntity(AnalyzedQuery* out, const EntityRef& ref,
                      size_t pattern_idx, bool as_subject) {
  auto it = out->entities.find(ref.id);
  if (it == out->entities.end()) {
    EntityInfo info;
    info.id = ref.id;
    info.type = ref.type;
    it = out->entities.emplace(ref.id, std::move(info)).first;
  } else if (it->second.type != ref.type) {
    return Status::TypeError(StrFormat(
        "entity id '%s' used with conflicting types (%s vs %s)",
        ref.id.c_str(), audit::EntityTypeName(it->second.type),
        audit::EntityTypeName(ref.type)));
  }
  if (ref.filter) {
    RAPTOR_RETURN_NOT_OK(
        ValidateEntityFilter(*ref.filter, ref.type, ref.id));
    it->second.filters.push_back(ref.filter.get());
  }
  if (as_subject) {
    it->second.subject_of.push_back(pattern_idx);
  } else {
    it->second.object_of.push_back(pattern_idx);
  }
  return Status::OK();
}

}  // namespace

Result<AnalyzedQuery> Analyze(const TbqlQuery& query) {
  AnalyzedQuery out;
  out.query = &query;

  for (size_t i = 0; i < query.patterns.size(); ++i) {
    const Pattern& p = query.patterns[i];
    // The subject of a system event is always a process (Sec III-A).
    if (p.subject.type != EntityType::kProcess) {
      return Status::TypeError(
          "pattern subjects must be processes (proc), got: " +
          p.subject.ToString(false));
    }
    RAPTOR_RETURN_NOT_OK(RegisterEntity(&out, p.subject, i, true));
    RAPTOR_RETURN_NOT_OK(RegisterEntity(&out, p.object, i, false));
    if (!p.id.empty()) {
      if (out.pattern_by_id.count(p.id)) {
        return Status::InvalidArgument("duplicate pattern id: " + p.id);
      }
      if (out.entities.count(p.id)) {
        return Status::InvalidArgument(
            "pattern id collides with entity id: " + p.id);
      }
      out.pattern_by_id.emplace(p.id, i);
    }
    if (p.path.is_path) {
      if (p.path.min_len < 0 ||
          (p.path.max_len >= 0 && p.path.max_len < p.path.min_len)) {
        return Status::InvalidArgument(
            "invalid path length bounds in: " + p.ToString());
      }
    }
  }

  // Temporal relationships reference event-pattern ids. Multi-hop paths
  // have no single temporal extent (Sec III-E Step 3), but a length-1 path
  // is semantically an event pattern (Sec III-D) and keeps its times.
  for (const TemporalRel& rel : query.temporal_rels) {
    for (const std::string& id : {rel.left, rel.right}) {
      auto it = out.pattern_by_id.find(id);
      if (it == out.pattern_by_id.end()) {
        return Status::NotFound("unknown pattern id in with-clause: " + id);
      }
      const Pattern& p = query.patterns[it->second];
      if (p.path.is_path && !(p.path.min_len == 1 && p.path.max_len == 1)) {
        return Status::InvalidArgument(
            "temporal relationships cannot constrain multi-hop path "
            "patterns: " + id);
      }
    }
  }
  for (const AttrRel& rel : query.attr_rels) {
    for (const auto& [qual, attr] :
         {std::pair{rel.left_qualifier, rel.left_attr},
          std::pair{rel.right_qualifier, rel.right_attr}}) {
      auto eit = out.entities.find(qual);
      if (eit != out.entities.end()) {
        if (!IsValidAttribute(eit->second.type, attr)) {
          return Status::InvalidArgument(StrFormat(
              "attribute '%s' is not valid for entity '%s'", attr.c_str(),
              qual.c_str()));
        }
        continue;
      }
      if (out.pattern_by_id.count(qual)) {
        if (!IsValidEventAttribute(attr)) {
          return Status::InvalidArgument(StrFormat(
              "attribute '%s' is not valid for event '%s'", attr.c_str(),
              qual.c_str()));
        }
        continue;
      }
      return Status::NotFound("unknown id in with-clause: " + qual);
    }
  }

  // Return clause: fill default attributes.
  if (query.returns.empty()) {
    return Status::InvalidArgument("return clause must not be empty");
  }
  for (const ReturnItem& item : query.returns) {
    ResolvedReturn rr;
    rr.id = item.id;
    auto eit = out.entities.find(item.id);
    if (eit != out.entities.end()) {
      rr.attr = item.attr.empty()
                    ? std::string(audit::SystemEntity::DefaultAttribute(
                          eit->second.type))
                    : item.attr;
      if (!IsValidAttribute(eit->second.type, rr.attr)) {
        return Status::InvalidArgument(StrFormat(
            "attribute '%s' is not valid for entity '%s'", rr.attr.c_str(),
            item.id.c_str()));
      }
    } else if (out.pattern_by_id.count(item.id)) {
      rr.is_event = true;
      rr.attr = item.attr.empty() ? "id" : item.attr;
      if (!IsValidEventAttribute(rr.attr)) {
        return Status::InvalidArgument(StrFormat(
            "attribute '%s' is not valid for event '%s'", rr.attr.c_str(),
            item.id.c_str()));
      }
    } else {
      return Status::NotFound("unknown id in return clause: " + item.id);
    }
    out.returns.push_back(std::move(rr));
  }
  return out;
}

}  // namespace raptor::tbql
