#include "tbql/parser.h"

#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace raptor::tbql {

namespace {

enum class Tok { kIdent, kKeyword, kInt, kString, kSymbol, kEnd };

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  size_t pos = 0;
};

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "file", "proc", "ip",     "as", "with",   "before",   "after",
      "within", "from", "to",   "at", "last",   "return",   "distinct",
      "in",   "not",
  };
  return kKeywords;
}

Result<audit::Timestamp> UnitScale(const std::string& unit) {
  static const std::unordered_map<std::string, audit::Timestamp> kUnits = {
      {"us", 1},
      {"ms", 1000},
      {"sec", 1000000},
      {"second", 1000000},
      {"seconds", 1000000},
      {"min", 60LL * 1000000},
      {"minute", 60LL * 1000000},
      {"minutes", 60LL * 1000000},
      {"hour", 3600LL * 1000000},
      {"hours", 3600LL * 1000000},
      {"day", 86400LL * 1000000},
      {"days", 86400LL * 1000000},
  };
  auto it = kUnits.find(unit);
  if (it == kUnits.end()) {
    return Status::ParseError("unknown time unit: " + unit);
  }
  return it->second;
}

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      std::string word(text.substr(start, i - start));
      if (Keywords().count(ToLower(word))) {
        tok.kind = Tok::kKeyword;
        tok.text = ToLower(word);
      } else {
        tok.kind = Tok::kIdent;
        tok.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      tok.kind = Tok::kInt;
      tok.text = std::string(text.substr(start, i - start));
    } else if (c == '"') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\\' && i + 1 < text.size() && text[i + 1] == '"') {
          s.push_back('"');
          i += 2;
        } else if (text[i] == '"') {
          ++i;
          closed = true;
          break;
        } else {
          s.push_back(text[i++]);
        }
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string at offset %zu", tok.pos));
      }
      tok.kind = Tok::kString;
      tok.text = std::move(s);
    } else {
      tok.kind = Tok::kSymbol;
      static const char* kMulti[] = {"~>", "->", "&&", "||", "!=", "<=", ">="};
      bool matched = false;
      for (const char* op : kMulti) {
        if (text.substr(i, 2) == op) {
          tok.text = op;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string kSingle = "[](),.!=<>~-";
        if (kSingle.find(c) == std::string::npos) {
          return Status::ParseError(
              StrFormat("unexpected character '%c' at offset %zu", c, i));
        }
        tok.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = Tok::kEnd;
  end.pos = text.size();
  tokens.push_back(end);
  return tokens;
}

#define TBQL_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::raptor::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<TbqlQuery> Parse() {
    TbqlQuery query;
    // Global filters until the first entity-type keyword.
    while (!PeekEntityType() && !PeekKeyword("return") &&
           Peek().kind != Tok::kEnd) {
      if (PeekWindowStart()) {
        auto w = ParseWindow();
        if (!w.ok()) return w.status();
        query.global_windows.push_back(std::move(w).value());
      } else {
        auto f = ParseAttrExpr();
        if (!f.ok()) return f.status();
        query.global_attr_filters.push_back(std::move(f).value());
      }
    }
    // Patterns.
    while (PeekEntityType()) {
      auto p = ParsePattern();
      if (!p.ok()) return p.status();
      query.patterns.push_back(std::move(p).value());
    }
    if (query.patterns.empty()) {
      return Err("a TBQL query requires at least one pattern");
    }
    // Relationship clause.
    if (AcceptKeyword("with")) {
      while (true) {
        TBQL_RETURN_NOT_OK(ParseRelItem(&query));
        if (!AcceptSymbol(",")) break;
      }
    }
    // Return clause.
    TBQL_RETURN_NOT_OK(ExpectKeyword("return"));
    if (AcceptKeyword("distinct")) query.distinct = true;
    while (true) {
      if (Peek().kind != Tok::kIdent) return Err("expected return item");
      ReturnItem item;
      item.id = Next().text;
      if (AcceptSymbol(".")) {
        if (Peek().kind != Tok::kIdent) return Err("expected attribute name");
        item.attr = Next().text;
      }
      query.returns.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    if (Peek().kind != Tok::kEnd) {
      return Err("trailing tokens: '" + Peek().text + "'");
    }
    return query;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    return Peek(ahead).kind == Tok::kKeyword && Peek(ahead).text == kw;
  }
  bool PeekEntityType() const {
    return PeekKeyword("file") || PeekKeyword("proc") || PeekKeyword("ip");
  }
  bool PeekWindowStart() const {
    return PeekKeyword("from") || PeekKeyword("at") || PeekKeyword("before") ||
           PeekKeyword("after") || PeekKeyword("last");
  }
  bool AcceptKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view sym) {
    if (Peek().kind == Tok::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(
          StrFormat("expected '%s' at offset %zu, got '%s'",
                    std::string(kw).c_str(), Peek().pos, Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError(
          StrFormat("expected '%s' at offset %zu, got '%s'",
                    std::string(sym).c_str(), Peek().pos, Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status Err(std::string msg) const {
    return Status::ParseError(
        StrFormat("%s (at offset %zu)", msg.c_str(), Peek().pos));
  }

  Result<audit::Timestamp> ParseTimestamp() {
    if (Peek().kind != Tok::kInt) return Err("expected integer timestamp");
    return static_cast<audit::Timestamp>(std::stoll(Next().text));
  }

  Result<TimeWindow> ParseWindow() {
    TimeWindow w;
    if (AcceptKeyword("from")) {
      w.kind = WindowKind::kRange;
      auto from = ParseTimestamp();
      if (!from.ok()) return from.status();
      w.from = from.value();
      TBQL_RETURN_NOT_OK(ExpectKeyword("to"));
      auto to = ParseTimestamp();
      if (!to.ok()) return to.status();
      w.to = to.value();
      return w;
    }
    if (AcceptKeyword("at")) {
      w.kind = WindowKind::kAt;
    } else if (AcceptKeyword("before")) {
      w.kind = WindowKind::kBefore;
    } else if (AcceptKeyword("after")) {
      w.kind = WindowKind::kAfter;
    } else if (AcceptKeyword("last")) {
      w.kind = WindowKind::kLast;
      if (Peek().kind != Tok::kInt) return Err("expected amount after 'last'");
      long long amount = std::stoll(Next().text);
      if (Peek().kind != Tok::kIdent) return Err("expected time unit");
      auto scale = UnitScale(Next().text);
      if (!scale.ok()) return scale.status();
      w.last_amount = amount * scale.value();
      return w;
    } else {
      return Err("expected time window");
    }
    auto ts = ParseTimestamp();
    if (!ts.ok()) return ts.status();
    w.from = ts.value();
    return w;
  }

  // ------------------------------------------------------------- attr_exp
  Result<std::unique_ptr<AttrExpr>> ParseAttrExpr() { return ParseAttrOr(); }

  Result<std::unique_ptr<AttrExpr>> ParseAttrOr() {
    auto lhs = ParseAttrAnd();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (AcceptSymbol("||")) {
      auto rhs = ParseAttrAnd();
      if (!rhs.ok()) return rhs.status();
      auto e = std::make_unique<AttrExpr>();
      e->kind = AttrExprKind::kOr;
      e->lhs = std::move(node);
      e->rhs = std::move(rhs).value();
      node = std::move(e);
    }
    return node;
  }

  Result<std::unique_ptr<AttrExpr>> ParseAttrAnd() {
    auto lhs = ParseAttrUnary();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (AcceptSymbol("&&")) {
      auto rhs = ParseAttrUnary();
      if (!rhs.ok()) return rhs.status();
      auto e = std::make_unique<AttrExpr>();
      e->kind = AttrExprKind::kAnd;
      e->lhs = std::move(node);
      e->rhs = std::move(rhs).value();
      node = std::move(e);
    }
    return node;
  }

  Result<std::unique_ptr<AttrExpr>> ParseAttrUnary() {
    if (AcceptSymbol("!")) {
      // "!value" bare-negation sugar, or !(...) general negation.
      if (Peek().kind == Tok::kString || Peek().kind == Tok::kInt) {
        auto e = std::make_unique<AttrExpr>();
        e->kind = AttrExprKind::kBareValue;
        e->negated = true;
        e->value_is_number = Peek().kind == Tok::kInt;
        e->value = Next().text;
        return std::unique_ptr<AttrExpr>(std::move(e));
      }
      auto inner = ParseAttrUnary();
      if (!inner.ok()) return inner.status();
      auto e = std::make_unique<AttrExpr>();
      e->kind = AttrExprKind::kNot;
      e->lhs = std::move(inner).value();
      return std::unique_ptr<AttrExpr>(std::move(e));
    }
    return ParseAttrPrimary();
  }

  Result<std::unique_ptr<AttrExpr>> ParseAttrPrimary() {
    if (AcceptSymbol("(")) {
      auto inner = ParseAttrExpr();
      if (!inner.ok()) return inner.status();
      TBQL_RETURN_NOT_OK(ExpectSymbol(")"));
      return std::move(inner).value();
    }
    if (Peek().kind == Tok::kString || Peek().kind == Tok::kInt) {
      auto e = std::make_unique<AttrExpr>();
      e->kind = AttrExprKind::kBareValue;
      e->value_is_number = Peek().kind == Tok::kInt;
      e->value = Next().text;
      return std::unique_ptr<AttrExpr>(std::move(e));
    }
    if (Peek().kind != Tok::kIdent) {
      return Err("expected attribute or value");
    }
    auto e = std::make_unique<AttrExpr>();
    e->attr = Next().text;
    if (AcceptSymbol(".")) {
      if (Peek().kind != Tok::kIdent) return Err("expected attribute name");
      e->qualifier = e->attr;
      e->attr = Next().text;
    }
    // "attr not? in (v1, v2, ...)"
    bool neg = AcceptKeyword("not");
    if (AcceptKeyword("in")) {
      e->kind = AttrExprKind::kInList;
      e->negated = neg;
      TBQL_RETURN_NOT_OK(ExpectSymbol("("));
      while (true) {
        if (Peek().kind != Tok::kString && Peek().kind != Tok::kInt) {
          return Err("expected value in list");
        }
        e->values.push_back(Next().text);
        if (!AcceptSymbol(",")) break;
      }
      TBQL_RETURN_NOT_OK(ExpectSymbol(")"));
      return std::unique_ptr<AttrExpr>(std::move(e));
    }
    if (neg) return Err("'not' must be followed by 'in'");
    // "attr bop value"
    e->kind = AttrExprKind::kCompare;
    struct OpMap {
      const char* sym;
      CompareOp op;
    };
    static const OpMap kOps[] = {
        {"=", CompareOp::kEq},  {"!=", CompareOp::kNe},
        {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
        {"<", CompareOp::kLt},  {">", CompareOp::kGt},
    };
    bool matched = false;
    for (const OpMap& m : kOps) {
      if (AcceptSymbol(m.sym)) {
        e->op = m.op;
        matched = true;
        break;
      }
    }
    if (!matched) return Err("expected comparison operator");
    if (Peek().kind != Tok::kString && Peek().kind != Tok::kInt) {
      return Err("expected comparison value");
    }
    e->value_is_number = Peek().kind == Tok::kInt;
    e->value = Next().text;
    return std::unique_ptr<AttrExpr>(std::move(e));
  }

  // --------------------------------------------------------------- op_exp
  Result<std::unique_ptr<OpExpr>> ParseOpExpr() { return ParseOpOr(); }

  Result<std::unique_ptr<OpExpr>> ParseOpOr() {
    auto lhs = ParseOpAnd();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (AcceptSymbol("||")) {
      auto rhs = ParseOpAnd();
      if (!rhs.ok()) return rhs.status();
      auto e = std::make_unique<OpExpr>();
      e->kind = OpExprKind::kOr;
      e->lhs = std::move(node);
      e->rhs = std::move(rhs).value();
      node = std::move(e);
    }
    return node;
  }

  Result<std::unique_ptr<OpExpr>> ParseOpAnd() {
    auto lhs = ParseOpUnary();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (AcceptSymbol("&&")) {
      auto rhs = ParseOpUnary();
      if (!rhs.ok()) return rhs.status();
      auto e = std::make_unique<OpExpr>();
      e->kind = OpExprKind::kAnd;
      e->lhs = std::move(node);
      e->rhs = std::move(rhs).value();
      node = std::move(e);
    }
    return node;
  }

  Result<std::unique_ptr<OpExpr>> ParseOpUnary() {
    if (AcceptSymbol("!")) {
      auto inner = ParseOpUnary();
      if (!inner.ok()) return inner.status();
      auto e = std::make_unique<OpExpr>();
      e->kind = OpExprKind::kNot;
      e->lhs = std::move(inner).value();
      return std::unique_ptr<OpExpr>(std::move(e));
    }
    if (AcceptSymbol("(")) {
      auto inner = ParseOpExpr();
      if (!inner.ok()) return inner.status();
      TBQL_RETURN_NOT_OK(ExpectSymbol(")"));
      return std::move(inner).value();
    }
    // Operation names: plain identifiers, plus the keywords that double as
    // operations ("before"/"after" never appear here).
    if (Peek().kind != Tok::kIdent) return Err("expected operation name");
    std::string op = ToLower(Next().text);
    if (!audit::EventOpFromName(op).has_value()) {
      return Err("unknown operation: " + op);
    }
    auto e = std::make_unique<OpExpr>();
    e->kind = OpExprKind::kOp;
    e->op = std::move(op);
    return std::unique_ptr<OpExpr>(std::move(e));
  }

  // ----------------------------------------------------------- entity/patt
  Result<EntityRef> ParseEntity() {
    EntityRef ref;
    if (AcceptKeyword("file")) {
      ref.type = EntityType::kFile;
    } else if (AcceptKeyword("proc")) {
      ref.type = EntityType::kProcess;
    } else if (AcceptKeyword("ip")) {
      ref.type = EntityType::kNetwork;
    } else {
      return Err("expected entity type (file/proc/ip)");
    }
    if (Peek().kind != Tok::kIdent) return Err("expected entity id");
    ref.id = Next().text;
    if (AcceptSymbol("[")) {
      auto f = ParseAttrExpr();
      if (!f.ok()) return f.status();
      ref.filter = std::move(f).value();
      TBQL_RETURN_NOT_OK(ExpectSymbol("]"));
    }
    return ref;
  }

  Result<Pattern> ParsePattern() {
    Pattern p;
    auto subj = ParseEntity();
    if (!subj.ok()) return subj.status();
    p.subject = std::move(subj).value();

    if (Peek().kind == Tok::kSymbol &&
        (Peek().text == "~>" || Peek().text == "->")) {
      p.path.is_path = true;
      p.path.fuzzy_arrow = Next().text == "~>";
      if (AcceptSymbol("(")) {
        // (min~max) / (min~) / (~max) / (n)
        p.path.min_len = 1;
        p.path.max_len = -1;
        bool saw_min = false;
        if (Peek().kind == Tok::kInt) {
          p.path.min_len = static_cast<int>(std::stoll(Next().text));
          saw_min = true;
        }
        if (AcceptSymbol("~")) {
          if (Peek().kind == Tok::kInt) {
            p.path.max_len = static_cast<int>(std::stoll(Next().text));
          }
        } else if (saw_min) {
          p.path.max_len = p.path.min_len;  // exact length "(n)"
        }
        TBQL_RETURN_NOT_OK(ExpectSymbol(")"));
      } else if (!p.path.fuzzy_arrow) {
        // "->" without a length spec is a length-1 path.
        p.path.min_len = 1;
        p.path.max_len = 1;
      } else {
        p.path.min_len = 1;
        p.path.max_len = -1;
      }
      if (AcceptSymbol("[")) {
        auto op = ParseOpExpr();
        if (!op.ok()) return op.status();
        p.op = std::move(op).value();
        TBQL_RETURN_NOT_OK(ExpectSymbol("]"));
      }
    } else {
      auto op = ParseOpExpr();
      if (!op.ok()) return op.status();
      p.op = std::move(op).value();
    }

    auto obj = ParseEntity();
    if (!obj.ok()) return obj.status();
    p.object = std::move(obj).value();

    if (AcceptKeyword("as")) {
      if (Peek().kind != Tok::kIdent) return Err("expected pattern id");
      p.id = Next().text;
      if (AcceptSymbol("[")) {
        auto f = ParseAttrExpr();
        if (!f.ok()) return f.status();
        p.event_filter = std::move(f).value();
        TBQL_RETURN_NOT_OK(ExpectSymbol("]"));
      }
    }
    if (PeekWindowStart() && !IsRelKeywordContext()) {
      auto w = ParseWindow();
      if (!w.ok()) return w.status();
      p.window = std::move(w).value();
    }
    return p;
  }

  /// "before"/"after" inside a rel clause follow "with id"; a pattern-level
  /// window "before <ts>" is followed by an integer. Disambiguate by the
  /// token after the keyword.
  bool IsRelKeywordContext() const {
    if (!(PeekKeyword("before") || PeekKeyword("after"))) return false;
    return Peek(1).kind != Tok::kInt;
  }

  // ------------------------------------------------------------------ rel
  Status ParseRelItem(TbqlQuery* query) {
    if (Peek().kind != Tok::kIdent) {
      return Err("expected pattern id or attribute in with-clause");
    }
    std::string first = Next().text;
    if (AcceptSymbol(".")) {
      // Attribute relationship: a.x bop b.y
      AttrRel rel;
      rel.left_qualifier = first;
      if (Peek().kind != Tok::kIdent) {
        return Err("expected attribute name");
      }
      rel.left_attr = Next().text;
      struct OpMap {
        const char* sym;
        CompareOp op;
      };
      static const OpMap kOps[] = {
          {"=", CompareOp::kEq},  {"!=", CompareOp::kNe},
          {"<=", CompareOp::kLe}, {">=", CompareOp::kGe},
          {"<", CompareOp::kLt},  {">", CompareOp::kGt},
      };
      bool matched = false;
      for (const OpMap& m : kOps) {
        if (AcceptSymbol(m.sym)) {
          rel.op = m.op;
          matched = true;
          break;
        }
      }
      if (!matched) return Err("expected comparison operator");
      if (Peek().kind != Tok::kIdent) {
        return Err("expected attribute reference");
      }
      rel.right_qualifier = Next().text;
      TBQL_RETURN_NOT_OK(ExpectSymbol("."));
      if (Peek().kind != Tok::kIdent) {
        return Err("expected attribute name");
      }
      rel.right_attr = Next().text;
      query->attr_rels.push_back(std::move(rel));
      return Status::OK();
    }
    // Temporal relationship: id before/after/within [n-m unit]? id
    TemporalRel rel;
    rel.left = std::move(first);
    if (AcceptKeyword("before")) {
      rel.op = TemporalOp::kBefore;
    } else if (AcceptKeyword("after")) {
      rel.op = TemporalOp::kAfter;
    } else if (AcceptKeyword("within")) {
      rel.op = TemporalOp::kWithin;
    } else {
      return Err("expected before/after/within");
    }
    if (AcceptSymbol("[")) {
      if (Peek().kind != Tok::kInt) return Err("expected gap bound");
      long long lo = std::stoll(Next().text);
      TBQL_RETURN_NOT_OK(ExpectSymbol("-"));
      if (Peek().kind != Tok::kInt) return Err("expected gap bound");
      long long hi = std::stoll(Next().text);
      if (Peek().kind != Tok::kIdent) return Err("expected time unit");
      auto scale = UnitScale(Next().text);
      if (!scale.ok()) return scale.status();
      rel.min_gap = lo * scale.value();
      rel.max_gap = hi * scale.value();
      TBQL_RETURN_NOT_OK(ExpectSymbol("]"));
    }
    if (Peek().kind != Tok::kIdent) return Err("expected pattern id");
    rel.right = Next().text;
    query->temporal_rels.push_back(std::move(rel));
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

#undef TBQL_RETURN_NOT_OK

}  // namespace

Result<TbqlQuery> ParseTbql(std::string_view text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace raptor::tbql
