// Hand-written lexer + recursive-descent parser for TBQL (Grammar 1).
// Replaces the ANTLR 4 grammar of the paper's implementation with an
// equivalent dependency-free parser.
#pragma once

#include <string_view>

#include "common/status.h"
#include "tbql/ast.h"

namespace raptor::tbql {

/// Parse a complete TBQL query. Timestamps in windows and gap bounds are
/// integer microseconds; gaps accept the units us/ms/sec/min/hour/day.
Result<TbqlQuery> ParseTbql(std::string_view text);

}  // namespace raptor::tbql
