// Semantic analysis for TBQL queries: entity-ID reuse resolution (the same
// ID across patterns denotes the same system entity; filters merge),
// default-attribute inference ("name"/"exename"/"dstip"), attribute name
// validation per entity type, pattern-ID bookkeeping and return-clause
// resolution. The execution engine operates on the analyzed form.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "tbql/ast.h"

namespace raptor::tbql {

struct EntityInfo {
  std::string id;
  EntityType type = EntityType::kFile;
  /// All filters attached to any occurrence of this entity ID (conjoined).
  std::vector<const AttrExpr*> filters;
  /// Pattern indices where the entity appears as subject / object.
  std::vector<size_t> subject_of;
  std::vector<size_t> object_of;
};

struct ResolvedReturn {
  std::string id;
  std::string attr;    // default-filled
  bool is_event = false;
};

struct AnalyzedQuery {
  const TbqlQuery* query = nullptr;
  std::map<std::string, EntityInfo> entities;
  std::map<std::string, size_t> pattern_by_id;  // "evt1" -> pattern index
  std::vector<ResolvedReturn> returns;
};

/// Validate `query` and resolve its symbol tables. The returned object
/// borrows `query`, which must outlive it.
Result<AnalyzedQuery> Analyze(const TbqlQuery& query);

/// True if `attr` is a valid attribute name for entities of `type`.
bool IsValidAttribute(EntityType type, std::string_view attr);

/// True if `attr` is a valid system-event attribute name.
bool IsValidEventAttribute(std::string_view attr);

}  // namespace raptor::tbql
