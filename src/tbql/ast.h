// TBQL (Threat Behavior Query Language) AST — Grammar 1 of the paper.
//
// A TBQL query is a sequence of event patterns / variable-length event path
// patterns over typed system entities, optional global filters, optional
// temporal & attribute relationships between patterns, and a return clause:
//
//   proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
//   proc p1 write file f2["%/tmp/upload.tar%"] as evt2
//   with evt1 before evt2
//   return distinct p1, f1, f2
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/types.h"

namespace raptor::tbql {

using EntityType = audit::EntityType;

// ----------------------------------------------------------- attr_exp rule

enum class AttrExprKind {
  kCompare,    // attr bop value
  kBareValue,  // '!'? value      (default-attribute sugar)
  kInList,     // attr ('not')? in (v1, v2, ...)
  kAnd,
  kOr,
  kNot,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

struct AttrExpr {
  AttrExprKind kind = AttrExprKind::kBareValue;

  // kCompare / kInList: attribute reference, optionally qualified ("p1.pid"
  // in with/global clauses; bare "pid" inside entity filters).
  std::string qualifier;
  std::string attr;

  CompareOp op = CompareOp::kEq;
  std::string value;              // kCompare / kBareValue (string form)
  bool value_is_number = false;
  std::vector<std::string> values;  // kInList
  bool negated = false;             // kBareValue('!') / kInList('not in')

  std::unique_ptr<AttrExpr> lhs;  // kAnd / kOr / kNot
  std::unique_ptr<AttrExpr> rhs;

  std::unique_ptr<AttrExpr> Clone() const;
  std::string ToString() const;
};

// ------------------------------------------------------------ op_exp rule

enum class OpExprKind { kOp, kNot, kAnd, kOr };

struct OpExpr {
  OpExprKind kind = OpExprKind::kOp;
  std::string op;  // operation name, e.g. "read"
  std::unique_ptr<OpExpr> lhs;
  std::unique_ptr<OpExpr> rhs;

  std::unique_ptr<OpExpr> Clone() const;
  std::string ToString() const;

  /// Evaluate against a concrete operation name.
  bool Matches(std::string_view op_name) const;

  /// Collect the positive operation names mentioned (for pruning-score and
  /// compilation to op IN (...) filters).
  void CollectOps(std::vector<std::string>* out) const;
};

// -------------------------------------------------------------- wind rule

enum class WindowKind { kRange, kAt, kBefore, kAfter, kLast };

struct TimeWindow {
  WindowKind kind = WindowKind::kRange;
  audit::Timestamp from = 0;  // kRange / kAt / kBefore / kAfter
  audit::Timestamp to = 0;
  audit::Timestamp last_amount = 0;  // kLast, already scaled to microseconds

  std::string ToString() const;
};

// ------------------------------------------------------------ entity rule

struct EntityRef {
  EntityType type = EntityType::kFile;
  std::string id;
  std::unique_ptr<AttrExpr> filter;  // may be null

  std::string ToString(bool with_filter = true) const;
};

// ---------------------------------------------------------- op_path rule

struct PathSpec {
  bool is_path = false;   // false: basic event pattern
  bool fuzzy_arrow = false;  // "~>" (true) vs "->" (false)
  int min_len = 1;
  int max_len = 1;        // -1 = unbounded
  // The operation constraint of the final hop lives in Pattern::op.

  std::string ToString() const;
};

// -------------------------------------------------------------- patt rule

struct Pattern {
  EntityRef subject;
  EntityRef object;
  std::unique_ptr<OpExpr> op;  // null for "~>" with omitted op
  PathSpec path;
  std::string id;                          // "as evtN"; may be empty
  std::unique_ptr<AttrExpr> event_filter;  // "as evtN[...]"; may be null
  std::optional<TimeWindow> window;

  std::string ToString() const;
};

// --------------------------------------------------------------- rel rule

enum class TemporalOp { kBefore, kAfter, kWithin };

struct TemporalRel {
  std::string left;
  TemporalOp op = TemporalOp::kBefore;
  std::string right;
  // Optional "[n-m unit]" bound, scaled to microseconds; -1 if absent.
  audit::Timestamp min_gap = -1;
  audit::Timestamp max_gap = -1;

  std::string ToString() const;
};

struct AttrRel {
  std::string left_qualifier, left_attr;
  CompareOp op = CompareOp::kEq;
  std::string right_qualifier, right_attr;

  std::string ToString() const;
};

// ------------------------------------------------------------ return rule

struct ReturnItem {
  std::string id;
  std::string attr;  // empty = default attribute (syntactic sugar)

  std::string ToString() const;
};

// -------------------------------------------------------------- the query

struct TbqlQuery {
  // Global filters: attribute expressions and/or time windows that apply to
  // every pattern.
  std::vector<std::unique_ptr<AttrExpr>> global_attr_filters;
  std::vector<TimeWindow> global_windows;

  std::vector<Pattern> patterns;
  std::vector<TemporalRel> temporal_rels;
  std::vector<AttrRel> attr_rels;

  bool distinct = false;
  std::vector<ReturnItem> returns;

  std::string ToString() const;
};

}  // namespace raptor::tbql
