// ThreatRaptor — public umbrella API.
//
// Reproduction of "Enabling Efficient Cyber Threat Hunting With Cyber
// Threat Intelligence" (ICDE 2021). The facade wires the full pipeline of
// Fig. 1: audit log ingestion (parsing + data reduction + dual-backend
// storage), OSCTI threat behavior extraction, TBQL query synthesis, and
// query execution in exact or fuzzy search mode.
//
// Quickstart:
//
//   raptor::ThreatRaptor tr;
//   tr.IngestSyscalls(records);                 // or IngestParsedLog
//   auto hunt = tr.HuntWithOsctiText(report);   // extract+synthesize+run
//   std::cout << hunt.value().report.results.ToString();
//
// or proactively, without OSCTI:
//
//   auto r = tr.Hunt("proc p[\"%curl%\"] connect ip i return p, i");
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "audit/parser.h"
#include "audit/simulator.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/poirot.h"
#include "extraction/extractor.h"
#include "service/hunt_service.h"
#include "storage/store.h"
#include "synthesis/synthesizer.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor {

struct ThreatRaptorOptions {
  storage::StoreOptions store;
  extraction::ExtractionOptions extraction;
  synthesis::SynthesisOptions synthesis;
  engine::ExecOptions execution;
  service::HuntServiceOptions service;
};

/// Result of an end-to-end OSCTI-driven hunt.
struct HuntOutcome {
  extraction::ExtractionResult extraction;  // behavior graph + timings
  synthesis::SynthesisResult synthesis;     // TBQL query + timing
  engine::ExecReport report;                // matched records
};

class ThreatRaptor {
 public:
  explicit ThreatRaptor(ThreatRaptorOptions options = {})
      : options_(std::move(options)) {}

  /// Parse raw syscall records and load them into both storage backends.
  /// May be called repeatedly: later batches append incrementally (entity
  /// interning is shared across batches, event ids continue). Batches
  /// apply through the hunt service's epoch gate, so ingestion interleaves
  /// safely with in-flight hunts (the mutation waits for running hunts to
  /// drain instead of being refused). Concurrent ingest calls serialize on
  /// the gate, but each call's parse must not race another — feed one
  /// stream per facade.
  Status IngestSyscalls(const std::vector<audit::SyscallRecord>& records) {
    RAPTOR_RETURN_NOT_OK(parser_.Parse(records, &accum_));
    return SyncStore();
  }

  /// Load an already-parsed log. May be called repeatedly: each batch is
  /// remapped into the accumulated entity store (the incoming log's entity
  /// ids are batch-local) and appended. A malformed batch (an event
  /// referencing an entity id absent from the batch's own entity table) is
  /// rejected before anything is interned or appended.
  Status IngestParsedLog(const audit::ParsedLog& log) {
    // Validate first so rejection leaves no trace in the accumulator.
    for (const audit::SystemEvent& ev : log.events) {
      if (ev.subject < 1 || ev.subject > log.entities.size() ||
          ev.object < 1 || ev.object > log.entities.size()) {
        return Status::InvalidArgument(
            "parsed log event references an unknown entity id");
      }
    }
    std::unordered_map<audit::EntityId, audit::EntityId> remap;
    remap.reserve(log.entities.size());
    for (const audit::SystemEntity& e : log.entities.entities()) {
      remap.emplace(e.id, accum_.entities.Intern(e));
    }
    for (const audit::SystemEvent& ev : log.events) {
      audit::SystemEvent copy = ev;
      copy.subject = remap.at(ev.subject);
      copy.object = remap.at(ev.object);
      copy.id = static_cast<audit::EventId>(accum_.events.size()) + 1;
      accum_.events.push_back(std::move(copy));
    }
    return SyncStore();
  }

  /// Store the cross-batch reduction window's withheld tail (see
  /// storage::StoreOptions::carry_over_window). Call at end of stream —
  /// queries and standing hunts only see flushed events. Applies through
  /// the epoch gate like any other mutation; a no-op when nothing is
  /// withheld or before ingestion.
  Status FlushIngest() {
    if (store_ == nullptr || store_->carried_event_count() == 0) {
      return Status::OK();
    }
    auto epoch = Service().Ingest([&](service::IngestReport* report) {
      storage::AppendStats stats;
      RAPTOR_RETURN_NOT_OK(store_->Flush(&stats));
      report->touched_entities = std::move(stats.touched_entities);
      return Status::OK();
    });
    return epoch.ok() ? Status::OK() : epoch.status();
  }

  /// Extract a threat behavior graph from OSCTI text (Algorithm 1).
  Result<extraction::ExtractionResult> ExtractBehaviorGraph(
      std::string_view oscti_text) const {
    extraction::ThreatBehaviorExtractor extractor(options_.extraction);
    return extractor.Extract(oscti_text);
  }

  /// Synthesize a TBQL query from a threat behavior graph (Sec III-E).
  Result<synthesis::SynthesisResult> SynthesizeQuery(
      const extraction::ThreatBehaviorGraph& graph) const {
    synthesis::QuerySynthesizer synthesizer(options_.synthesis);
    return synthesizer.Synthesize(graph);
  }

  /// Execute a TBQL query text in exact search mode. A thin synchronous
  /// wrapper over the hunt service: Submit + Wait, so it shares admission
  /// and scheduling with asynchronous clients.
  Result<engine::ExecReport> Hunt(std::string_view tbql_text) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    service::HuntRequest request;
    request.text = std::string(tbql_text);
    request.dialect = service::QueryDialect::kTbql;
    request.exec = options_.execution;
    auto response = Service().Run(std::move(request));
    if (!response.ok()) return response.status();
    return std::move(response).value().report;
  }

  /// Execute a parsed TBQL query in exact search mode (directly on the
  /// executor — parsed queries skip the service's text front door but run
  /// on the same DAG-scheduled engine).
  Result<engine::ExecReport> Hunt(const tbql::TbqlQuery& query) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    engine::TbqlExecutor executor(store_.get());
    return executor.Execute(query, options_.execution);
  }

  /// The asynchronous hunt service over this store (created on first use;
  /// null before ingestion). Submit() TBQL/Cypher/SQL requests and hold
  /// HuntTickets; up to options.service.max_concurrent hunts run at once.
  service::HuntService* hunt_service() const {
    return store_ == nullptr ? nullptr : &Service();
  }

  /// Execute a TBQL query in fuzzy search mode (Poirot-based alignment).
  Result<engine::FuzzyReport> HuntFuzzy(
      std::string_view tbql_text, const engine::FuzzyOptions& fuzzy = {}) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    engine::FuzzyMatcher matcher(store_.get());
    return matcher.SearchText(tbql_text, fuzzy);
  }

  /// The whole pipeline of Fig. 2: OSCTI text -> threat behavior graph ->
  /// synthesized TBQL query -> matched audit records.
  Result<HuntOutcome> HuntWithOsctiText(std::string_view oscti_text) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    auto extraction = ExtractBehaviorGraph(oscti_text);
    if (!extraction.ok()) return extraction.status();
    auto synthesis = SynthesizeQuery(extraction.value().graph);
    if (!synthesis.ok()) return synthesis.status();
    auto report = Hunt(synthesis.value().query);
    if (!report.ok()) return report.status();
    HuntOutcome outcome;
    outcome.extraction = std::move(extraction).value();
    outcome.synthesis = std::move(synthesis).value();
    outcome.report = std::move(report).value();
    return outcome;
  }

  /// The loaded audit store (null before ingestion).
  const storage::AuditStore* store() const { return store_.get(); }

 private:
  Status RequireStore() const {
    if (store_ == nullptr) {
      return Status::InvalidArgument(
          "no audit data ingested; call IngestSyscalls first");
    }
    return Status::OK();
  }

  /// Apply the accumulated batch under the hunt service's epoch gate:
  /// the mutation waits for running hunts to drain, applies, and bumps the
  /// store epoch (waking standing hunts). The service is created here on
  /// first ingest so every later mutation is gated.
  Status SyncStore() {
    if (store_ == nullptr) {
      store_ = std::make_unique<storage::AuditStore>(options_.store);
    }
    auto epoch = Service().Ingest([&](service::IngestReport* report) {
      storage::AppendStats stats;
      RAPTOR_RETURN_NOT_OK(store_->Append(accum_, &stats));
      report->touched_entities = std::move(stats.touched_entities);
      // The store consumed this batch's events; keep only the entity
      // table (shared interning across batches) so long-running sessions
      // do not retain a second full copy of every raw event.
      accum_.events.clear();
      return Status::OK();
    });
    return epoch.ok() ? Status::OK() : epoch.status();
  }

  service::HuntService& Service() const {
    std::lock_guard<std::mutex> lock(service_mu_);
    if (service_ == nullptr) {
      service_ = std::make_unique<service::HuntService>(store_.get(),
                                                        options_.service);
    }
    return *service_;
  }

  ThreatRaptorOptions options_;
  audit::AuditLogParser parser_;
  audit::ParsedLog accum_;
  std::unique_ptr<storage::AuditStore> store_;
  // Lazily constructed so purely-synchronous pipelines that never ingest
  // pay nothing; destroyed before store_ (declaration order) so in-flight
  // hunts are cancelled while the store is still alive.
  mutable std::mutex service_mu_;
  mutable std::unique_ptr<service::HuntService> service_;
};

}  // namespace raptor
