// ThreatRaptor — public umbrella API.
//
// Reproduction of "Enabling Efficient Cyber Threat Hunting With Cyber
// Threat Intelligence" (ICDE 2021). The facade wires the full pipeline of
// Fig. 1: audit log ingestion (parsing + data reduction + dual-backend
// storage), OSCTI threat behavior extraction, TBQL query synthesis, and
// query execution in exact or fuzzy search mode.
//
// Quickstart:
//
//   raptor::ThreatRaptor tr;
//   tr.IngestSyscalls(records);                 // or IngestParsedLog
//   auto hunt = tr.HuntWithOsctiText(report);   // extract+synthesize+run
//   std::cout << hunt.value().report.results.ToString();
//
// or proactively, without OSCTI:
//
//   auto r = tr.Hunt("proc p[\"%curl%\"] connect ip i return p, i");
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "audit/parser.h"
#include "audit/simulator.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/poirot.h"
#include "extraction/extractor.h"
#include "storage/store.h"
#include "synthesis/synthesizer.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor {

struct ThreatRaptorOptions {
  storage::StoreOptions store;
  extraction::ExtractionOptions extraction;
  synthesis::SynthesisOptions synthesis;
  engine::ExecOptions execution;
};

/// Result of an end-to-end OSCTI-driven hunt.
struct HuntOutcome {
  extraction::ExtractionResult extraction;  // behavior graph + timings
  synthesis::SynthesisResult synthesis;     // TBQL query + timing
  engine::ExecReport report;                // matched records
};

class ThreatRaptor {
 public:
  explicit ThreatRaptor(ThreatRaptorOptions options = {})
      : options_(std::move(options)) {}

  /// Parse raw syscall records and load them into both storage backends.
  /// Call exactly once before hunting.
  Status IngestSyscalls(const std::vector<audit::SyscallRecord>& records) {
    audit::ParsedLog log;
    audit::AuditLogParser parser;
    RAPTOR_RETURN_NOT_OK(parser.Parse(records, &log));
    return IngestParsedLog(log);
  }

  /// Load an already-parsed log.
  Status IngestParsedLog(const audit::ParsedLog& log) {
    if (store_ != nullptr) {
      return Status::InvalidArgument("audit data already ingested");
    }
    store_ = std::make_unique<storage::AuditStore>(options_.store);
    return store_->Load(log);
  }

  /// Extract a threat behavior graph from OSCTI text (Algorithm 1).
  Result<extraction::ExtractionResult> ExtractBehaviorGraph(
      std::string_view oscti_text) const {
    extraction::ThreatBehaviorExtractor extractor(options_.extraction);
    return extractor.Extract(oscti_text);
  }

  /// Synthesize a TBQL query from a threat behavior graph (Sec III-E).
  Result<synthesis::SynthesisResult> SynthesizeQuery(
      const extraction::ThreatBehaviorGraph& graph) const {
    synthesis::QuerySynthesizer synthesizer(options_.synthesis);
    return synthesizer.Synthesize(graph);
  }

  /// Execute a TBQL query text in exact search mode.
  Result<engine::ExecReport> Hunt(std::string_view tbql_text) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    engine::TbqlExecutor executor(store_.get());
    return executor.ExecuteText(tbql_text, options_.execution);
  }

  /// Execute a parsed TBQL query in exact search mode.
  Result<engine::ExecReport> Hunt(const tbql::TbqlQuery& query) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    engine::TbqlExecutor executor(store_.get());
    return executor.Execute(query, options_.execution);
  }

  /// Execute a TBQL query in fuzzy search mode (Poirot-based alignment).
  Result<engine::FuzzyReport> HuntFuzzy(
      std::string_view tbql_text, const engine::FuzzyOptions& fuzzy = {}) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    engine::FuzzyMatcher matcher(store_.get());
    return matcher.SearchText(tbql_text, fuzzy);
  }

  /// The whole pipeline of Fig. 2: OSCTI text -> threat behavior graph ->
  /// synthesized TBQL query -> matched audit records.
  Result<HuntOutcome> HuntWithOsctiText(std::string_view oscti_text) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    auto extraction = ExtractBehaviorGraph(oscti_text);
    if (!extraction.ok()) return extraction.status();
    auto synthesis = SynthesizeQuery(extraction.value().graph);
    if (!synthesis.ok()) return synthesis.status();
    auto report = Hunt(synthesis.value().query);
    if (!report.ok()) return report.status();
    HuntOutcome outcome;
    outcome.extraction = std::move(extraction).value();
    outcome.synthesis = std::move(synthesis).value();
    outcome.report = std::move(report).value();
    return outcome;
  }

  /// The loaded audit store (null before ingestion).
  const storage::AuditStore* store() const { return store_.get(); }

 private:
  Status RequireStore() const {
    if (store_ == nullptr) {
      return Status::InvalidArgument(
          "no audit data ingested; call IngestSyscalls first");
    }
    return Status::OK();
  }

  ThreatRaptorOptions options_;
  std::unique_ptr<storage::AuditStore> store_;
};

}  // namespace raptor
