// ThreatRaptor — public umbrella API.
//
// Reproduction of "Enabling Efficient Cyber Threat Hunting With Cyber
// Threat Intelligence" (ICDE 2021). The facade wires the full pipeline of
// Fig. 1: audit log ingestion (parsing + data reduction + dual-backend
// storage), OSCTI threat behavior extraction, TBQL query synthesis, and
// query execution in exact or fuzzy search mode.
//
// Quickstart:
//
//   raptor::ThreatRaptor tr;
//   tr.IngestSyscalls(records);                 // or IngestParsedLog
//   auto hunt = tr.HuntWithOsctiText(report);   // extract+synthesize+run
//   std::cout << hunt.value().report.results.ToString();
//
// or proactively, without OSCTI:
//
//   auto r = tr.Hunt("proc p[\"%curl%\"] connect ip i return p, i");
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "audit/parser.h"
#include "audit/simulator.h"
#include "common/status.h"
#include "engine/executor.h"
#include "engine/poirot.h"
#include "extraction/extractor.h"
#include "obs/metrics.h"
#include "persist/checkpointer.h"
#include "service/hunt_service.h"
#include "storage/store.h"
#include "synthesis/synthesizer.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor {

struct ThreatRaptorOptions {
  storage::StoreOptions store;
  extraction::ExtractionOptions extraction;
  synthesis::SynthesisOptions synthesis;
  engine::ExecOptions execution;
  service::HuntServiceOptions service;
};

/// Result of an end-to-end OSCTI-driven hunt.
struct HuntOutcome {
  extraction::ExtractionResult extraction;  // behavior graph + timings
  synthesis::SynthesisResult synthesis;     // TBQL query + timing
  engine::ExecReport report;                // matched records
};

class ThreatRaptor {
 public:
  explicit ThreatRaptor(ThreatRaptorOptions options = {})
      : options_(std::move(options)) {}

  /// Open a durable facade: recover the data directory named by
  /// `durability` (load the latest snapshot, replay the WAL tail), and
  /// route every later mutation through the write-ahead log. Restores the
  /// store, the reduction carry-over window, standing-hunt seen-sets
  /// (consumed by the next SubmitStanding of the same query — see
  /// HuntService::SeedStanding), the retention watermarks, and tailed
  /// streams' byte offsets (restored_stream_offset). An empty
  /// `durability.data_dir` returns a plain in-memory facade.
  static Result<std::unique_ptr<ThreatRaptor>> Open(
      const persist::DurabilityOptions& durability,
      ThreatRaptorOptions options = {});

  /// Cut a snapshot now: under the service's exclusive gate, apply the
  /// retention policy (if a horizon is configured), write a sharded
  /// snapshot of the full system state, rotate the WAL and prune dead
  /// segments. Unsupported on a non-durable facade.
  Status Checkpoint();

  /// Final checkpoint + detach persistence. Idempotent; the facade stays
  /// queryable but further mutations are refused.
  Status Close();

  /// This facade persists through a data directory (came from Open with a
  /// non-empty data_dir, and Close has not run).
  bool durable() const { return checkpointer_ != nullptr; }

  /// WAL / snapshot / recovery / retention counters (zeroed struct when
  /// not durable).
  persist::DurabilityStats durability_stats() const;

  /// Byte offset at which `stream` (a name passed to the stream-tagged
  /// IngestSyscalls overload, e.g. the tailed file's path) should resume,
  /// as recovered by Open; nullopt if the stream is unknown.
  std::optional<uint64_t> restored_stream_offset(
      std::string_view stream) const;

  /// Parse raw syscall records and load them into both storage backends.
  /// May be called repeatedly: later batches append incrementally (entity
  /// interning is shared across batches, event ids continue). Batches
  /// apply through the hunt service's epoch gate, so ingestion interleaves
  /// safely with in-flight hunts (the mutation waits for running hunts to
  /// drain instead of being refused). Concurrent ingest calls serialize on
  /// the gate, but each call's parse must not race another — feed one
  /// stream per facade. On a durable facade the raw batch is WAL-logged
  /// before it applies.
  Status IngestSyscalls(const std::vector<audit::SyscallRecord>& records);

  /// Stream-tagged variant: additionally records that `records` ends at
  /// byte `offset_after` of `stream`, atomically with the batch itself
  /// (the offset rides in the WAL record and in snapshots), so a restart
  /// resumes the tail exactly after the last persisted batch.
  Status IngestSyscalls(const std::vector<audit::SyscallRecord>& records,
                        std::string_view stream, uint64_t offset_after);

  /// Load an already-parsed log. May be called repeatedly: each batch is
  /// remapped into the accumulated entity store (the incoming log's entity
  /// ids are batch-local) and appended. A malformed batch (an event
  /// referencing an entity id absent from the batch's own entity table) is
  /// rejected before anything is interned or appended (and before it is
  /// WAL-logged).
  Status IngestParsedLog(const audit::ParsedLog& log);

  /// Store the cross-batch reduction window's withheld tail (see
  /// storage::StoreOptions::carry_over_window). Call at end of stream —
  /// queries and standing hunts only see flushed events. Applies through
  /// the epoch gate like any other mutation; a no-op when nothing is
  /// withheld or before ingestion.
  Status FlushIngest();

  /// One-release compatibility shim: ingest a v1 text snapshot (the
  /// retired storage/snapshot.h format) as a parsed-log batch, carrying
  /// the old data into the durable v2 world. See persist/legacy_v1.h.
  Status ImportV1Snapshot(const std::string& path);

  /// Extract a threat behavior graph from OSCTI text (Algorithm 1).
  Result<extraction::ExtractionResult> ExtractBehaviorGraph(
      std::string_view oscti_text) const {
    extraction::ThreatBehaviorExtractor extractor(options_.extraction);
    return extractor.Extract(oscti_text);
  }

  /// Synthesize a TBQL query from a threat behavior graph (Sec III-E).
  Result<synthesis::SynthesisResult> SynthesizeQuery(
      const extraction::ThreatBehaviorGraph& graph) const {
    synthesis::QuerySynthesizer synthesizer(options_.synthesis);
    return synthesizer.Synthesize(graph);
  }

  /// Execute a TBQL query text in exact search mode. A thin synchronous
  /// wrapper over the hunt service: Submit + Wait, so it shares admission
  /// and scheduling with asynchronous clients.
  Result<engine::ExecReport> Hunt(std::string_view tbql_text) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    service::HuntRequest request;
    request.text = std::string(tbql_text);
    request.dialect = service::QueryDialect::kTbql;
    request.exec = options_.execution;
    auto response = Service().Run(std::move(request));
    if (!response.ok()) return response.status();
    return std::move(response).value().report;
  }

  /// Execute a parsed TBQL query in exact search mode (directly on the
  /// executor — parsed queries skip the service's text front door but run
  /// on the same DAG-scheduled engine).
  Result<engine::ExecReport> Hunt(const tbql::TbqlQuery& query) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    engine::TbqlExecutor executor(store_.get());
    return executor.Execute(query, options_.execution);
  }

  /// The asynchronous hunt service over this store (created on first use;
  /// null before ingestion). Submit() TBQL/Cypher/SQL requests and hold
  /// HuntTickets; up to options.service.max_concurrent hunts run at once.
  service::HuntService* hunt_service() const {
    return store_ == nullptr ? nullptr : &Service();
  }

  /// SLO metrics snapshot of the hunt service: queue depth, per-tenant
  /// submission/rejection counters, hunt latency quantiles, epoch lag, and
  /// writer-gate wait statistics. A default-constructed (all-zero) snapshot
  /// when no store is loaded or the service was never instantiated — the
  /// call itself never forces the lazy service into existence.
  service::HuntService::Metrics service_metrics() const {
    std::lock_guard<std::mutex> lock(service_mu_);
    if (store_ == nullptr || service_ == nullptr) return {};
    return service_->metrics();
  }

  /// Populate `registry` with the facade's full telemetry snapshot: every
  /// hunt-service series (admission, gate, epochs, standing/MQO, latency
  /// histograms, per-tenant counters — see HuntService::CollectMetrics)
  /// when the service exists (never forces the lazy service into
  /// existence), plus WAL / checkpoint / recovery / retention counters on
  /// a durable facade.
  void CollectMetrics(obs::MetricsRegistry* registry) const;

  /// CollectMetrics rendered as Prometheus exposition text (default) or
  /// JSON — the scrape/export surface behind `hunt --metrics-export`.
  std::string ExportMetrics(
      obs::MetricsFormat format = obs::MetricsFormat::kPrometheus) const;

  /// Runtime tenant-policy reconfiguration on the hunt service: the new
  /// weight/queue-cap take effect at the tenant's next admission (see
  /// HuntService::SetTenantPolicy). Instantiates the lazy service so the
  /// policy is in place before the tenant's first Submit; false (policy
  /// dropped) when no store is loaded.
  bool SetTenantPolicy(const std::string& tenant,
                       service::TenantPolicy policy) {
    if (store_ == nullptr) return false;
    Service().SetTenantPolicy(tenant, policy);
    return true;
  }

  /// Instantiate a hunt-library catalog technique (huntlib/catalog.h) with
  /// `params` filling its IOC slots — missing parameters default to
  /// match-anything — and run it synchronously through the hunt service.
  /// NotFound for an unknown technique id. For a standing fleet, use
  /// huntlib::HuntLibrary::AttachCatalog against hunt_service() instead.
  Result<service::HuntResponse> HuntTechnique(
      std::string_view technique_id,
      const std::map<std::string, std::string>& params = {}) const;

  /// Execute a TBQL query in fuzzy search mode (Poirot-based alignment).
  Result<engine::FuzzyReport> HuntFuzzy(
      std::string_view tbql_text, const engine::FuzzyOptions& fuzzy = {}) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    engine::FuzzyMatcher matcher(store_.get());
    return matcher.SearchText(tbql_text, fuzzy);
  }

  /// The whole pipeline of Fig. 2: OSCTI text -> threat behavior graph ->
  /// synthesized TBQL query -> matched audit records.
  Result<HuntOutcome> HuntWithOsctiText(std::string_view oscti_text) const {
    RAPTOR_RETURN_NOT_OK(RequireStore());
    auto extraction = ExtractBehaviorGraph(oscti_text);
    if (!extraction.ok()) return extraction.status();
    auto synthesis = SynthesizeQuery(extraction.value().graph);
    if (!synthesis.ok()) return synthesis.status();
    auto report = Hunt(synthesis.value().query);
    if (!report.ok()) return report.status();
    HuntOutcome outcome;
    outcome.extraction = std::move(extraction).value();
    outcome.synthesis = std::move(synthesis).value();
    outcome.report = std::move(report).value();
    return outcome;
  }

  /// The loaded audit store (null before ingestion).
  const storage::AuditStore* store() const { return store_.get(); }

 private:
  Status RequireStore() const {
    if (store_ == nullptr) {
      return Status::InvalidArgument(
          "no audit data ingested; call IngestSyscalls first");
    }
    return Status::OK();
  }

  /// Mutations on a durable facade are logged write-ahead — except while
  /// replaying the WAL itself, and never after Close().
  bool ShouldLog() const {
    return checkpointer_ != nullptr && !replaying_ && !closed_;
  }

  /// Apply the accumulated batch under the hunt service's epoch gate:
  /// the WAL record (durable facades) is appended first, then the
  /// mutation waits for running hunts to drain, applies, and bumps the
  /// store epoch (waking standing hunts). The service is created here on
  /// first ingest so every later mutation is gated.
  Status SyncStore(persist::WalRecordType type, std::string payload,
                   std::string_view stream, uint64_t offset_after);

  /// Recovery body of Open: restore the snapshot (store, accumulator
  /// interner, epoch marks, stream offsets, standing seeds) and replay
  /// the WAL tail through the normal ingest path.
  Status RecoverState();
  Status ReplayWalRecord(const persist::WalRecord& record);
  /// Record the (epoch → last event id) watermark retention uses, and cut
  /// an automatic checkpoint when the configured interval elapsed.
  Status NoteEpochApplied(uint64_t epoch);

  service::HuntService& Service() const {
    std::lock_guard<std::mutex> lock(service_mu_);
    if (service_ == nullptr) {
      service_ = std::make_unique<service::HuntService>(store_.get(),
                                                        options_.service);
      if (checkpointer_ != nullptr) {
        service_->AttachWal(checkpointer_->wal());
      }
    }
    return *service_;
  }

  ThreatRaptorOptions options_;
  audit::AuditLogParser parser_;
  audit::ParsedLog accum_;
  // Durable state. Declared before store_/service_ so it is destroyed
  // last: the service holds a raw pointer to the checkpointer's WAL
  // writer until it is itself destroyed.
  std::unique_ptr<persist::Checkpointer> checkpointer_;
  bool replaying_ = false;  // WAL replay in progress; do not re-log
  bool closed_ = false;     // Close() ran; mutations are refused
  uint64_t last_checkpoint_epoch_ = 0;
  /// (epoch, last event id) per applied epoch, oldest first — retention's
  /// horizon→watermark translation. Only populated when a horizon is set.
  /// Guarded by the write gate (mutations) / Exclusive (checkpoint).
  std::vector<std::pair<uint64_t, uint64_t>> epoch_marks_;
  uint64_t events_evicted_ = 0;
  uint64_t epochs_evicted_ = 0;
  /// stream name → bytes consumed, updated inside the gate with the batch
  /// that consumed them; snapshots carry it, Open restores it.
  mutable std::mutex offsets_mu_;
  std::map<std::string, uint64_t, std::less<>> stream_offsets_;
  std::unique_ptr<storage::AuditStore> store_;
  // Lazily constructed so purely-synchronous pipelines that never ingest
  // pay nothing; destroyed before store_ (declaration order) so in-flight
  // hunts are cancelled while the store is still alive.
  mutable std::mutex service_mu_;
  mutable std::unique_ptr<service::HuntService> service_;
};

}  // namespace raptor
