// Built-in hunt technique catalog, organized by MITRE ATT&CK tactic.
//
// Each technique is a parameterizable TBQL or Cypher template over the
// audit data model (proc / file / ip entities, the Table III operations)
// plus metadata: the ATT&CK technique id, tactic, severity, and reference
// links. Templates carry `{param}` placeholders; IOC slots declare which
// parameters an IOC feed can fill (e.g. a recognized file path slots into
// `{file}`). Instantiate() substitutes parameters — unfilled ones become
// empty, which the %-wrapped TBQL slots and Cypher CONTAINS slots both
// read as match-anything, so every template instantiates into a runnable
// hunt even with no IOCs at all.
//
// The catalog is the standing-hunt playbook ATHAFI describes: a curated
// library continuously executed against collected data, from which
// HuntLibrary (feed.h) stamps out hundreds of standing hunts per tenant.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "nlp/ioc.h"
#include "service/hunt_service.h"

namespace raptor::huntlib {

/// MITRE ATT&CK enterprise tactics covered by the catalog.
enum class Tactic {
  kExecution = 0,
  kPersistence,
  kPrivilegeEscalation,
  kCredentialAccess,
  kDiscovery,
  kLateralMovement,
  kCollection,
  kCommandAndControl,
  kExfiltration,
};

const char* TacticName(Tactic tactic);

enum class Severity { kLow = 0, kMedium, kHigh, kCritical };

const char* SeverityName(Severity severity);

/// A template parameter an IOC feed can fill: a recognized IOC of `type`
/// substitutes into `{param}`.
struct IocSlot {
  std::string param;
  nlp::IocType type = nlp::IocType::kFilepath;
};

struct Technique {
  std::string id;    // ATT&CK technique id, e.g. "T1021"
  std::string name;  // ATT&CK technique name
  Tactic tactic = Tactic::kExecution;
  Severity severity = Severity::kMedium;
  service::QueryDialect dialect = service::QueryDialect::kTbql;
  /// Query text with `{param}` placeholders.
  std::string query_template;
  /// Parameters fillable from recognized IOCs.
  std::vector<IocSlot> ioc_slots;
  /// Reference links (ATT&CK pages, reports).
  std::vector<std::string> references;
};

/// The built-in catalog, ordered by technique id.
const std::vector<Technique>& AllTechniques();

/// Look up a technique by ATT&CK id ("T1021"); nullptr when unknown.
const Technique* FindTechnique(std::string_view id);

/// All catalog techniques under one tactic.
std::vector<const Technique*> TechniquesForTactic(Tactic tactic);

/// Substitute `{param}` placeholders in the technique's template. Missing
/// parameters substitute empty (match anything); unknown keys in `params`
/// are ignored. The result always parses under the technique's dialect.
std::string Instantiate(const Technique& technique,
                        const std::map<std::string, std::string>& params = {});

}  // namespace raptor::huntlib
