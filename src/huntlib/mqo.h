// Multi-query optimization: canonical query keys.
//
// At fleet scale the same technique template lands on the service hundreds
// of times — once per tenant, often with renamed variables from different
// synthesis runs. Structurally-identical hunts must share one execution
// per epoch. The canonical key makes "structurally identical" decidable by
// string equality: parse, rename every variable / entity id / pattern id
// in order of first appearance (v0, v1, ...), and print the query back.
//
// Renaming changes user-visible output column names, so the key appends
// the projection labels exactly as the executors derive them from the
// ORIGINAL text; two hunts share a key only when their delivered rows AND
// column headers are byte-identical. Unparseable text falls back to the
// raw string (self-equality still dedupes exact duplicates).
//
// This header must stay free of service-layer includes: hunt_service.cc
// keys its per-epoch refresh dedupe cache on these functions, while
// huntlib/feed.h includes hunt_service.h — a service include here would
// close a cycle.
#pragma once

#include <string>
#include <string_view>

namespace raptor::huntlib {

/// Canonical key for a Cypher hunt query.
std::string CanonicalCypherKey(std::string_view cypher);

/// Canonical key for a TBQL hunt query.
std::string CanonicalTbqlKey(std::string_view tbql);

/// Canonical key for a SQL hunt query: raw text (the SQL path is the
/// paper's baseline, not a synthesis target — exact-duplicate dedupe is
/// enough).
std::string CanonicalSqlKey(std::string_view sql);

}  // namespace raptor::huntlib
