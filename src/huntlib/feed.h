// Synthesizer bridge: CTI inputs -> concrete standing-hunt specs -> the
// service.
//
// Three input roads produce HuntSpecs:
//   * FromTechnique — instantiate one catalog template with explicit
//     parameters (the CLI's `hunt --technique T1021`).
//   * FromIocFeed — run IOC recognition (nlp/ioc.h) over a feed of raw
//     indicators and stamp out every catalog technique with a fillable
//     IOC slot, one spec per technique.
//   * SynthesizeFromCti — drive the paper's full nlp -> extraction ->
//     synthesis pipeline over unstructured CTI report text into a TBQL
//     query, tagging it with any ATT&CK technique ids the report mentions.
//
// HuntLibrary also owns the fleet lifecycle: Attach() registers specs as
// standing hunts via HuntService::SubmitStanding and keeps the handles, so
// hundreds of hunts per tenant detach in one call. Not thread-safe; use
// one HuntLibrary per managing thread.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "extraction/extractor.h"
#include "huntlib/catalog.h"
#include "service/hunt_service.h"
#include "synthesis/synthesizer.h"

namespace raptor::huntlib {

/// A concrete, runnable standing-hunt specification.
struct HuntSpec {
  /// Human label: "T1021 Remote Services" or "cti:<source tag>".
  std::string name;
  /// Catalog technique id when the spec derives from one; empty for
  /// free-form synthesized hunts with no recognized technique tag.
  std::string technique_id;
  service::HuntRequest request;
  service::StandingOptions standing;
};

struct HuntLibraryOptions {
  extraction::ExtractionOptions extraction;
  synthesis::SynthesisOptions synthesis;
  /// Standing-hunt options stamped onto every produced spec.
  service::StandingOptions standing;
};

class HuntLibrary {
 public:
  explicit HuntLibrary(HuntLibraryOptions options = {})
      : options_(std::move(options)) {}

  /// Instantiate catalog technique `technique_id` for `tenant`.
  /// NotFound for an unknown id.
  Result<HuntSpec> FromTechnique(
      std::string_view technique_id,
      const std::map<std::string, std::string>& params = {},
      const std::string& tenant = "") const;

  /// Recognize IOCs in `feed_text` and instantiate every catalog
  /// technique that has at least one slot an IOC fills (first matching
  /// IOC per slot; file-path slots accept Linux paths, Windows paths, and
  /// bare file names).
  std::vector<HuntSpec> FromIocFeed(std::string_view feed_text,
                                    const std::string& tenant = "") const;

  /// CTI report text -> threat behavior graph -> synthesized TBQL standing
  /// hunt. `source_tag` labels the spec; technique metadata attaches when
  /// the report mentions a catalog ATT&CK id. Fails when extraction or
  /// synthesis finds no usable behavior.
  Result<HuntSpec> SynthesizeFromCti(std::string_view cti_text,
                                     const std::string& source_tag = "",
                                     const std::string& tenant = "") const;

  /// Register one spec as a standing hunt and remember the handle.
  service::StandingHandle Attach(service::HuntService* service, HuntSpec spec,
                                 service::StandingSink sink = {});

  /// Stamp the entire catalog onto `tenant` (default parameters) and
  /// attach every spec; returns the number attached.
  size_t AttachCatalog(service::HuntService* service,
                       const std::string& tenant,
                       service::StandingSink sink = {});

  /// Cancel every attached standing hunt and drop the handles.
  void DetachAll();

  /// Per-technique refresh attribution across the attached fleet:
  /// raptor_technique_{refreshes,incremental,mqo_followed,alerts}_total
  /// counters labeled {technique=<ATT&CK id>} ("untagged" for free-form
  /// CTI hunts with no recognized id), aggregated from each handle's
  /// StandingHandle::refresh_stats. mqo_followed counts refreshes served
  /// from a structural twin's execution — the per-technique view of the
  /// service-wide raptor_mqo_dedup_hits_total.
  void CollectMetrics(obs::MetricsRegistry* registry) const;

  struct Attachment {
    HuntSpec spec;
    service::StandingHandle handle;
  };
  const std::vector<Attachment>& attachments() const { return attachments_; }

 private:
  HuntLibraryOptions options_;
  std::vector<Attachment> attachments_;
};

}  // namespace raptor::huntlib
