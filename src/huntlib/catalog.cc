#include "huntlib/catalog.h"

#include <algorithm>

namespace raptor::huntlib {

namespace {

using service::QueryDialect;

std::string Attack(const std::string& id) {
  // Sub-techniques ("T1053.003") link under their parent page.
  std::string base = id.substr(0, id.find('.'));
  return "https://attack.mitre.org/techniques/" + base + "/";
}

Technique Make(std::string id, std::string name, Tactic tactic,
               Severity severity, QueryDialect dialect,
               std::string query_template, std::vector<IocSlot> slots) {
  Technique t;
  t.id = std::move(id);
  t.name = std::move(name);
  t.tactic = tactic;
  t.severity = severity;
  t.dialect = dialect;
  t.query_template = std::move(query_template);
  t.ioc_slots = std::move(slots);
  t.references = {Attack(t.id)};
  return t;
}

std::vector<Technique> BuildCatalog() {
  using nlp::IocType;
  std::vector<Technique> out;

  // --- Execution -----------------------------------------------------------
  out.push_back(Make(
      "T1059", "Command and Scripting Interpreter", Tactic::kExecution,
      Severity::kMedium, QueryDialect::kCypher,
      "MATCH (p:proc)-[e:start]->(q:proc) "
      "WHERE q.exename CONTAINS '{interpreter}' "
      "RETURN p.exename, q.exename",
      {{"interpreter", IocType::kFilename}}));
  out.push_back(Make(
      "T1204", "User Execution: Malicious File", Tactic::kExecution,
      Severity::kHigh, QueryDialect::kTbql,
      "proc p[\"%{proc}%\"] execute file f[\"%{file}%\"] "
      "return distinct p, f",
      {{"proc", IocType::kFilename}, {"file", IocType::kFilepath}}));

  // --- Persistence ---------------------------------------------------------
  out.push_back(Make(
      "T1053", "Scheduled Task/Job: Cron", Tactic::kPersistence,
      Severity::kMedium, QueryDialect::kTbql,
      "proc p[\"%{proc}%\"] write file f[\"%cron%\"] return distinct p, f",
      {{"proc", IocType::kFilename}}));
  out.push_back(Make(
      "T1547", "Boot or Logon Autostart Execution", Tactic::kPersistence,
      Severity::kHigh, QueryDialect::kCypher,
      "MATCH (p:proc)-[e:write]->(f:file) "
      "WHERE f.name CONTAINS '/etc/init' "
      "AND p.exename CONTAINS '{proc}' "
      "RETURN p.exename, f.name",
      {{"proc", IocType::kFilename}}));

  // --- Privilege escalation ------------------------------------------------
  out.push_back(Make(
      "T1548", "Abuse Elevation Control Mechanism",
      Tactic::kPrivilegeEscalation, Severity::kHigh, QueryDialect::kTbql,
      "proc p[\"%{proc}%\"] start proc q[\"%sudo%\"] return distinct p, q",
      {{"proc", IocType::kFilename}}));

  // --- Credential access ---------------------------------------------------
  out.push_back(Make(
      "T1003", "OS Credential Dumping", Tactic::kCredentialAccess,
      Severity::kCritical, QueryDialect::kTbql,
      "proc p[\"%{proc}%\"] read file f[\"%/etc/shadow%\"] "
      "return distinct p, f",
      {{"proc", IocType::kFilename}}));

  // --- Discovery -----------------------------------------------------------
  out.push_back(Make(
      "T1083", "File and Directory Discovery", Tactic::kDiscovery,
      Severity::kLow, QueryDialect::kCypher,
      "MATCH (p:proc)-[e:read]->(f:file) "
      "WHERE f.name CONTAINS '/proc/' "
      "AND p.exename CONTAINS '{proc}' "
      "RETURN DISTINCT p.exename",
      {{"proc", IocType::kFilename}}));
  out.push_back(Make(
      "T1087", "Account Discovery", Tactic::kDiscovery, Severity::kLow,
      QueryDialect::kCypher,
      "MATCH (p:proc)-[e:read]->(f:file) "
      "WHERE f.name CONTAINS '/etc/passwd' "
      "AND p.exename CONTAINS '{proc}' "
      "RETURN p.exename, f.name",
      {{"proc", IocType::kFilename}}));

  // --- Lateral movement ----------------------------------------------------
  out.push_back(Make(
      "T1021", "Remote Services", Tactic::kLateralMovement, Severity::kHigh,
      QueryDialect::kTbql,
      "proc p[\"%{proc}%\"] connect ip i[\"%{ip}%\"] "
      "return distinct p, i.dstip",
      {{"proc", IocType::kFilename}, {"ip", IocType::kIp}}));

  // --- Collection ----------------------------------------------------------
  out.push_back(Make(
      "T1560", "Archive Collected Data", Tactic::kCollection,
      Severity::kMedium, QueryDialect::kTbql,
      "proc p[\"%{archiver}%\"] read file f[\"%{file}%\"] as e1 "
      "proc p write file g[\"%.tar%\"] as e2 "
      "with e1 before e2 return distinct p, f, g",
      {{"archiver", IocType::kFilename}, {"file", IocType::kFilepath}}));
  out.push_back(Make(
      "T1005", "Data from Local System", Tactic::kCollection,
      Severity::kMedium, QueryDialect::kCypher,
      "MATCH (p:proc)-[e1:read]->(f:file), (p)-[e2:write]->(g:file) "
      "WHERE f.name CONTAINS '{file}' "
      "RETURN p.exename, f.name, g.name",
      {{"file", IocType::kFilepath}}));

  // --- Command and control -------------------------------------------------
  out.push_back(Make(
      "T1071", "Application Layer Protocol", Tactic::kCommandAndControl,
      Severity::kHigh, QueryDialect::kTbql,
      "proc p[\"%{proc}%\"] send ip i[\"%{ip}%\"] as e1 "
      "proc p recv ip j[\"%{ip}%\"] as e2 "
      "return distinct p",
      {{"proc", IocType::kFilename}, {"ip", IocType::kIp}}));
  out.push_back(Make(
      "T1105", "Ingress Tool Transfer", Tactic::kCommandAndControl,
      Severity::kCritical, QueryDialect::kTbql,
      "proc p[\"%{proc}%\"] recv ip i[\"%{ip}%\"] as e1 "
      "proc p write file f[\"%{file}%\"] as e2 "
      "with e1 before e2 return distinct p, f",
      {{"proc", IocType::kFilename},
       {"ip", IocType::kIp},
       {"file", IocType::kFilepath}}));

  // --- Exfiltration --------------------------------------------------------
  out.push_back(Make(
      "T1041", "Exfiltration Over C2 Channel", Tactic::kExfiltration,
      Severity::kCritical, QueryDialect::kTbql,
      "proc p[\"%{proc}%\"] read file f[\"%{file}%\"] as e1 "
      "proc p send ip i[\"%{ip}%\"] as e2 "
      "with e1 before e2 return distinct p, f, i.dstip",
      {{"proc", IocType::kFilename},
       {"file", IocType::kFilepath},
       {"ip", IocType::kIp}}));

  std::sort(out.begin(), out.end(),
            [](const Technique& a, const Technique& b) { return a.id < b.id; });
  return out;
}

}  // namespace

const char* TacticName(Tactic tactic) {
  switch (tactic) {
    case Tactic::kExecution: return "execution";
    case Tactic::kPersistence: return "persistence";
    case Tactic::kPrivilegeEscalation: return "privilege-escalation";
    case Tactic::kCredentialAccess: return "credential-access";
    case Tactic::kDiscovery: return "discovery";
    case Tactic::kLateralMovement: return "lateral-movement";
    case Tactic::kCollection: return "collection";
    case Tactic::kCommandAndControl: return "command-and-control";
    case Tactic::kExfiltration: return "exfiltration";
  }
  return "unknown";
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kLow: return "low";
    case Severity::kMedium: return "medium";
    case Severity::kHigh: return "high";
    case Severity::kCritical: return "critical";
  }
  return "unknown";
}

const std::vector<Technique>& AllTechniques() {
  static const std::vector<Technique>* catalog =
      new std::vector<Technique>(BuildCatalog());
  return *catalog;
}

const Technique* FindTechnique(std::string_view id) {
  for (const Technique& t : AllTechniques()) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

std::vector<const Technique*> TechniquesForTactic(Tactic tactic) {
  std::vector<const Technique*> out;
  for (const Technique& t : AllTechniques()) {
    if (t.tactic == tactic) out.push_back(&t);
  }
  return out;
}

std::string Instantiate(const Technique& technique,
                        const std::map<std::string, std::string>& params) {
  const std::string& tmpl = technique.query_template;
  std::string out;
  out.reserve(tmpl.size());
  size_t pos = 0;
  while (pos < tmpl.size()) {
    size_t open = tmpl.find('{', pos);
    if (open == std::string::npos) {
      out.append(tmpl, pos, std::string::npos);
      break;
    }
    size_t close = tmpl.find('}', open);
    if (close == std::string::npos) {
      out.append(tmpl, pos, std::string::npos);
      break;
    }
    out.append(tmpl, pos, open - pos);
    std::string key = tmpl.substr(open + 1, close - open - 1);
    auto it = params.find(key);
    if (it != params.end()) out += it->second;
    // Missing parameters substitute empty: TBQL templates wrap slots in
    // %-wildcards and Cypher slots sit inside CONTAINS, so an empty value
    // means "match anything" either way.
    pos = close + 1;
  }
  return out;
}

}  // namespace raptor::huntlib
