#include "huntlib/mqo.h"

#include <map>
#include <vector>

#include "storage/graphdb/cypher_ast.h"
#include "storage/graphdb/cypher_parser.h"
#include "tbql/ast.h"
#include "tbql/parser.h"

namespace raptor::huntlib {

namespace {

/// First-appearance renamer: the n-th distinct name becomes "vn".
class Renamer {
 public:
  void Rename(std::string* name) {
    if (name->empty()) return;  // anonymous stays anonymous
    auto [it, fresh] = map_.emplace(*name, "");
    if (fresh) it->second = "v" + std::to_string(map_.size() - 1);
    *name = it->second;
  }

 private:
  std::map<std::string, std::string> map_;
};

void RenameCypherExpr(graphdb::CypherExpr* e, Renamer* r) {
  if (e == nullptr) return;
  r->Rename(&e->var);
  RenameCypherExpr(e->lhs.get(), r);
  RenameCypherExpr(e->rhs.get(), r);
}

/// Column label the Cypher executor derives for a return item.
std::string CypherLabel(const graphdb::CypherReturnItem& item) {
  if (!item.alias.empty()) return item.alias;
  return item.expr ? item.expr->ToString() : std::string();
}

void RenameTbqlAttrExpr(tbql::AttrExpr* e, Renamer* r) {
  if (e == nullptr) return;
  r->Rename(&e->qualifier);
  RenameTbqlAttrExpr(e->lhs.get(), r);
  RenameTbqlAttrExpr(e->rhs.get(), r);
}

}  // namespace

std::string CanonicalCypherKey(std::string_view cypher) {
  auto parsed = graphdb::ParseCypher(cypher);
  if (!parsed.ok()) return "C\x1f" + std::string(cypher);
  graphdb::CypherQuery& q = parsed.value();

  // Projection labels from the original names, before renaming touches
  // them — the key must separate hunts whose output headers differ.
  std::string labels;
  for (const graphdb::CypherReturnItem& item : q.items) {
    labels += '\x1f';
    labels += CypherLabel(item);
  }

  Renamer r;
  for (graphdb::PatternPart& part : q.patterns) {
    // Chain order: n0, r0, n1, r1, ... — matches the printed form.
    for (size_t i = 0; i < part.nodes.size(); ++i) {
      r.Rename(&part.nodes[i].var);
      if (i < part.rels.size()) r.Rename(&part.rels[i].var);
    }
  }
  RenameCypherExpr(q.where.get(), &r);
  for (graphdb::CypherReturnItem& item : q.items) {
    RenameCypherExpr(item.expr.get(), &r);
  }
  return "C\x1f" + q.ToString() + labels;
}

std::string CanonicalTbqlKey(std::string_view tbql) {
  auto parsed = tbql::ParseTbql(tbql);
  if (!parsed.ok()) return "T\x1f" + std::string(tbql);
  tbql::TbqlQuery& q = parsed.value();

  // Projection labels the TBQL executor derives ("id" or "id.attr") from
  // the original names.
  std::string labels;
  for (const tbql::ReturnItem& item : q.returns) {
    labels += '\x1f';
    labels += item.attr.empty() ? item.id : item.id + "." + item.attr;
  }

  Renamer r;
  for (tbql::Pattern& p : q.patterns) {
    r.Rename(&p.subject.id);
    RenameTbqlAttrExpr(p.subject.filter.get(), &r);
    r.Rename(&p.object.id);
    RenameTbqlAttrExpr(p.object.filter.get(), &r);
    r.Rename(&p.id);
    RenameTbqlAttrExpr(p.event_filter.get(), &r);
  }
  for (auto& f : q.global_attr_filters) RenameTbqlAttrExpr(f.get(), &r);
  for (tbql::TemporalRel& rel : q.temporal_rels) {
    r.Rename(&rel.left);
    r.Rename(&rel.right);
  }
  for (tbql::AttrRel& rel : q.attr_rels) {
    r.Rename(&rel.left_qualifier);
    r.Rename(&rel.right_qualifier);
  }
  for (tbql::ReturnItem& item : q.returns) r.Rename(&item.id);
  return "T\x1f" + q.ToString() + labels;
}

std::string CanonicalSqlKey(std::string_view sql) {
  return "S\x1f" + std::string(sql);
}

}  // namespace raptor::huntlib
