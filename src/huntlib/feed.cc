#include "huntlib/feed.h"

#include <utility>

#include "nlp/ioc.h"

namespace raptor::huntlib {

namespace {

/// A recognized IOC of `have` can fill a slot declared as `want`: exact
/// type match, except file-path slots absorb every file-ish recognition.
bool IocFillsSlot(nlp::IocType want, nlp::IocType have) {
  if (want == have) return true;
  auto fileish = [](nlp::IocType t) {
    return t == nlp::IocType::kFilepath || t == nlp::IocType::kWinFilepath ||
           t == nlp::IocType::kFilename;
  };
  return fileish(want) && fileish(have);
}

HuntSpec SpecForTechnique(const Technique& t,
                          const std::map<std::string, std::string>& params,
                          const std::string& tenant,
                          const service::StandingOptions& standing) {
  HuntSpec spec;
  spec.name = t.id + " " + t.name;
  spec.technique_id = t.id;
  spec.request.text = Instantiate(t, params);
  spec.request.dialect = t.dialect;
  spec.request.tenant = tenant;
  spec.standing = standing;
  return spec;
}

}  // namespace

Result<HuntSpec> HuntLibrary::FromTechnique(
    std::string_view technique_id,
    const std::map<std::string, std::string>& params,
    const std::string& tenant) const {
  const Technique* t = FindTechnique(technique_id);
  if (t == nullptr) {
    return Status::NotFound("unknown technique: " + std::string(technique_id));
  }
  return SpecForTechnique(*t, params, tenant, options_.standing);
}

std::vector<HuntSpec> HuntLibrary::FromIocFeed(std::string_view feed_text,
                                               const std::string& tenant) const {
  std::vector<nlp::IocMatch> iocs = nlp::RecognizeIocs(feed_text);
  std::vector<HuntSpec> out;
  for (const Technique& t : AllTechniques()) {
    std::map<std::string, std::string> params;
    for (const IocSlot& slot : t.ioc_slots) {
      for (const nlp::IocMatch& ioc : iocs) {
        if (IocFillsSlot(slot.type, ioc.type)) {
          params.emplace(slot.param, ioc.text);
          break;
        }
      }
    }
    if (params.empty()) continue;  // no indicator speaks to this technique
    out.push_back(SpecForTechnique(t, params, tenant, options_.standing));
  }
  return out;
}

Result<HuntSpec> HuntLibrary::SynthesizeFromCti(
    std::string_view cti_text, const std::string& source_tag,
    const std::string& tenant) const {
  extraction::ThreatBehaviorExtractor extractor(options_.extraction);
  auto extracted = extractor.Extract(cti_text);
  if (!extracted.ok()) return extracted.status();

  synthesis::QuerySynthesizer synthesizer(options_.synthesis);
  auto synthesized = synthesizer.Synthesize(extracted.value().graph);
  if (!synthesized.ok()) return synthesized.status();

  HuntSpec spec;
  spec.name = source_tag.empty() ? std::string("cti") : "cti:" + source_tag;
  // Reports routinely tag behaviors with ATT&CK ids; the first one the
  // catalog knows supplies technique metadata for the synthesized hunt.
  for (const std::string& id : extraction::FindAttackTechniqueIds(cti_text)) {
    if (FindTechnique(id) != nullptr) {
      spec.technique_id = id;
      spec.name += " [" + id + "]";
      break;
    }
  }
  spec.request.text = synthesized.value().tbql_text;
  spec.request.dialect = service::QueryDialect::kTbql;
  spec.request.tenant = tenant;
  spec.standing = options_.standing;
  return spec;
}

service::StandingHandle HuntLibrary::Attach(service::HuntService* service,
                                            HuntSpec spec,
                                            service::StandingSink sink) {
  service::StandingHandle handle =
      service->SubmitStanding(spec.request, std::move(sink), spec.standing);
  attachments_.push_back({std::move(spec), handle});
  return handle;
}

size_t HuntLibrary::AttachCatalog(service::HuntService* service,
                                  const std::string& tenant,
                                  service::StandingSink sink) {
  size_t attached = 0;
  for (const Technique& t : AllTechniques()) {
    Attach(service, SpecForTechnique(t, {}, tenant, options_.standing), sink);
    ++attached;
  }
  return attached;
}

void HuntLibrary::DetachAll() {
  for (Attachment& a : attachments_) {
    if (a.handle.valid()) a.handle.Cancel();
  }
  attachments_.clear();
}

void HuntLibrary::CollectMetrics(obs::MetricsRegistry* registry) const {
  // Aggregate per technique id: a fleet commonly stamps the same
  // technique onto many tenants, and the MQO question ("which techniques
  // dedupe?") is about the technique, not the subscription.
  std::map<std::string, service::StandingHandle::RefreshStats> per_technique;
  for (const Attachment& a : attachments_) {
    std::string key =
        a.spec.technique_id.empty() ? "untagged" : a.spec.technique_id;
    service::StandingHandle::RefreshStats s = a.handle.refresh_stats();
    service::StandingHandle::RefreshStats& agg = per_technique[key];
    agg.refreshes += s.refreshes;
    agg.incremental += s.incremental;
    agg.dedup_followed += s.dedup_followed;
    agg.alerts += s.alerts;
  }
  for (const auto& [technique, s] : per_technique) {
    obs::MetricLabels labels{{"technique", technique}};
    registry->Counter("raptor_technique_refreshes_total",
                      "Standing refreshes delivered, by technique",
                      static_cast<double>(s.refreshes), labels);
    registry->Counter("raptor_technique_incremental_total",
                      "Dirty-seeded incremental refreshes, by technique",
                      static_cast<double>(s.incremental), labels);
    registry->Counter(
        "raptor_technique_mqo_followed_total",
        "Refreshes served from a structural twin's execution, by technique",
        static_cast<double>(s.dedup_followed), labels);
    registry->Counter("raptor_technique_alerts_total",
                      "Refreshes that delivered a non-empty delta, by "
                      "technique",
                      static_cast<double>(s.alerts), labels);
  }
}

}  // namespace raptor::huntlib
