// The 18-attack-case evaluation benchmark (Table IV).
//
// 15 cases follow the DARPA TC Engagement 3 scenarios (ClearScope /
// FiveDirections / THEIA / TRACE performer systems under red-team
// penetration: Firefox backdoors, browser extensions with the Drakon
// dropper, phishing e-mails, the Pine backdoor) and 3 are the multi-step
// intrusive attacks the paper performed on its own testbed (password
// cracking and data leakage after Shellshock penetration, VPNFilter).
//
// Because the original DARPA logs and testbed are unavailable, each case
// carries (a) an OSCTI-style attack report written in the register of the
// TC ground-truth reports, (b) labeled IOC / IOC-relation ground truth for
// that text, (c) a scripted attack whose syscalls are planted into a
// benign background workload (>15 simulated users), and (d) the resulting
// ground-truth malicious events. Cases deliberately reproduce the paper's
// qualitative phenomena: the "run" self-loop ambiguity (tc_trace_1), IOC
// deviations defeating exact search (tc_fivedirections_3, tc_trace_3),
// under-reported steps lowering recall (tc_trace_4, password_crack,
// data_leak), Android package names (ClearScope), and Windows paths
// (FiveDirections).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "audit/simulator.h"
#include "audit/types.h"
#include "extraction/extractor.h"
#include "storage/store.h"

namespace raptor::cases {

struct GtRelation {
  std::string src;
  std::string verb;  // lemma
  std::string dst;
};

struct AttackCase {
  std::string id;    // e.g. "tc_clearscope_1"
  std::string name;  // Table IV description
  std::string oscti_text;

  // RQ1 ground truth (labels over oscti_text).
  std::vector<std::string> gt_iocs;
  std::vector<GtRelation> gt_relations;

  // The attack script: every step yields ground-truth malicious events.
  std::vector<audit::AttackStep> attack_steps;
  audit::Timestamp attack_base_time = 0;

  // Background noise profile.
  audit::BenignProfile benign;

  uint64_t seed = 1;
};

/// All 18 cases, in Table IV order.
const std::vector<AttackCase>& AllCases();

/// Case by id, or nullptr.
const AttackCase* FindCase(std::string_view id);

/// The merged syscall stream (benign noise + attack script) for a case.
std::vector<audit::SyscallRecord> BuildCaseLog(const AttackCase& c);

/// Ids of the ground-truth malicious events in a loaded store: the events
/// produced by the case's attack steps.
std::set<long long> GroundTruthEventIds(const AttackCase& c,
                                        const storage::AuditStore& store);

// ----------------------------------------------------------------- scoring

struct PrScore {
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;

  double precision() const {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  double recall() const {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
  double f1() const {
    double p = precision(), r = recall();
    return p + r == 0 ? 0.0 : 2 * p * r / (p + r);
  }

  PrScore& operator+=(const PrScore& o) {
    tp += o.tp;
    fp += o.fp;
    fn += o.fn;
    return *this;
  }
};

/// Exact-string scoring of extracted entity strings against ground truth.
/// Each ground-truth string may be matched at most once.
PrScore ScoreStrings(const std::vector<std::string>& extracted,
                     const std::vector<std::string>& ground_truth);

/// Scoring of (src, verb, dst) relation triplets, exact on all three.
PrScore ScoreRelations(const std::vector<GtRelation>& extracted,
                       const std::vector<GtRelation>& ground_truth);

/// Scoring of found event ids against the ground-truth malicious set.
PrScore ScoreEvents(const std::vector<long long>& found,
                    const std::set<long long>& ground_truth);

/// Alias-aware scoring of an extraction result against a case's RQ1 ground
/// truth: a merged IOC entity matches a ground-truth string through its
/// canonical form or any absorbed alias; a behavior-graph edge matches a
/// ground-truth relation when the verb is equal and both endpoint entities
/// match the endpoint strings.
void ScoreExtraction(const extraction::ExtractionResult& result,
                     const AttackCase& c, PrScore* entity_score,
                     PrScore* relation_score);

}  // namespace raptor::cases
