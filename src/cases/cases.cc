#include "cases/cases.h"

#include <algorithm>
#include <unordered_map>

namespace raptor::cases {

namespace {

using audit::AttackStep;
using audit::EventOp;
using audit::Timestamp;

constexpr Timestamp kSec = 1'000'000;

AttackStep FileStep(const std::string& exe, long long pid, EventOp op,
                    const std::string& path, double at_sec,
                    long long bytes = 8192, int syscalls = 3) {
  AttackStep s;
  s.exe = exe;
  s.pid = pid;
  s.op = op;
  s.object_path = path;
  s.at = static_cast<Timestamp>(at_sec * kSec);
  s.bytes = bytes;
  s.syscall_count = syscalls;
  return s;
}

AttackStep NetStep(const std::string& exe, long long pid, EventOp op,
                   const std::string& ip, int port, double at_sec,
                   long long bytes = 4096) {
  AttackStep s;
  s.exe = exe;
  s.pid = pid;
  s.op = op;
  s.dst_ip = ip;
  s.dst_port = port;
  s.at = static_cast<Timestamp>(at_sec * kSec);
  s.bytes = bytes;
  s.syscall_count = 2;
  return s;
}

AttackStep StartStep(const std::string& exe, long long pid,
                     const std::string& target_exe, long long target_pid,
                     double at_sec) {
  AttackStep s;
  s.exe = exe;
  s.pid = pid;
  s.op = EventOp::kStart;
  s.object_exe = target_exe;
  s.object_pid = target_pid;
  s.at = static_cast<Timestamp>(at_sec * kSec);
  s.syscall_count = 1;
  return s;
}

/// Append `n` copies of a network step spaced > the 1s reduction window, so
/// each lands as a separate stored event (long-running beacon behaviour).
void Beacon(std::vector<AttackStep>* steps, const std::string& exe,
            long long pid, EventOp op, const std::string& ip, int port,
            double start_sec, int n, double gap_sec = 2.5) {
  for (int i = 0; i < n; ++i) {
    steps->push_back(NetStep(exe, pid, op, ip, port, start_sec + i * gap_sec));
  }
}

void RepeatFile(std::vector<AttackStep>* steps, const std::string& exe,
                long long pid, EventOp op, const std::string& path,
                double start_sec, int n, double gap_sec = 2.5) {
  for (int i = 0; i < n; ++i) {
    steps->push_back(FileStep(exe, pid, op, path, start_sec + i * gap_sec));
  }
}

audit::BenignProfile Noise(int processes, uint64_t seed) {
  audit::BenignProfile p;
  p.num_processes = processes;
  p.seed = seed;
  return p;
}

std::vector<AttackCase> BuildAllCases() {
  std::vector<AttackCase> cases;

  // ------------------------------------------------------- tc_clearscope_1
  {
    AttackCase c;
    c.id = "tc_clearscope_1";
    c.name = "20180406 1500 ClearScope - Phishing E-mail Link";
    c.oscti_text =
        "The victim received a phishing e-mail with a malicious link on the "
        "ClearScope Android device. After the user clicked the link, the "
        "mail client com.lockwatch.mail downloaded the payload "
        "/data/local/tmp/payload.apk from 132.197.158.11. Then "
        "com.lockwatch.mail started the installer com.android.defcontainer. "
        "com.android.defcontainer opened /data/local/tmp/payload.apk and "
        "wrote the unpacked code to /data/app/com.lockwatch.shim/exec.dex. "
        "Finally, com.android.defcontainer executed "
        "/data/app/com.lockwatch.shim/exec.dex.";
    c.gt_iocs = {"com.lockwatch.mail", "/data/local/tmp/payload.apk",
                 "132.197.158.11", "com.android.defcontainer",
                 "/data/app/com.lockwatch.shim/exec.dex"};
    c.gt_relations = {
        {"com.lockwatch.mail", "download", "/data/local/tmp/payload.apk"},
        {"com.lockwatch.mail", "download", "132.197.158.11"},
        {"/data/local/tmp/payload.apk", "download", "132.197.158.11"},
        {"com.lockwatch.mail", "start", "com.android.defcontainer"},
        {"com.android.defcontainer", "open", "/data/local/tmp/payload.apk"},
        {"com.android.defcontainer", "write",
         "/data/app/com.lockwatch.shim/exec.dex"},
        {"com.android.defcontainer", "execute",
         "/data/app/com.lockwatch.shim/exec.dex"},
    };
    const char* mail = "com.lockwatch.mail";
    const char* def = "com.android.defcontainer";
    c.attack_steps = {
        NetStep(mail, 7001, EventOp::kRead, "132.197.158.11", 443, 1.0),
        FileStep(mail, 7001, EventOp::kWrite, "/data/local/tmp/payload.apk",
                 3.0),
        StartStep(mail, 7001, def, 7002, 5.0),
        FileStep(def, 7002, EventOp::kRead, "/data/local/tmp/payload.apk",
                 7.0),
        FileStep(def, 7002, EventOp::kWrite,
                 "/data/app/com.lockwatch.shim/exec.dex", 9.0),
        FileStep(def, 7002, EventOp::kExecute,
                 "/data/app/com.lockwatch.shim/exec.dex", 11.0, 0, 1),
    };
    c.attack_base_time = 600 * kSec;
    c.benign = Noise(260, 101);
    c.seed = 101;
    cases.push_back(std::move(c));
  }

  // ------------------------------------------------------- tc_clearscope_2
  {
    AttackCase c;
    c.id = "tc_clearscope_2";
    c.name = "20180411 1400 ClearScope - Firefox Backdoor w/ Drakon In-Memory";
    c.oscti_text =
        "The red team exploited a backdoor in the Firefox variant "
        "org.mozilla.fennec on the Android device. org.mozilla.fennec "
        "downloaded the Drakon implant /data/local/tmp/drakon.so from "
        "161.116.88.72 and loaded /data/local/tmp/drakon.so in memory.";
    c.gt_iocs = {"org.mozilla.fennec", "/data/local/tmp/drakon.so",
                 "161.116.88.72"};
    c.gt_relations = {
        {"org.mozilla.fennec", "download", "/data/local/tmp/drakon.so"},
        {"org.mozilla.fennec", "download", "161.116.88.72"},
        {"/data/local/tmp/drakon.so", "download", "161.116.88.72"},
        {"org.mozilla.fennec", "load", "/data/local/tmp/drakon.so"},
    };
    const char* fennec = "org.mozilla.fennec";
    c.attack_steps = {
        NetStep(fennec, 7101, EventOp::kRead, "161.116.88.72", 443, 1.0),
        FileStep(fennec, 7101, EventOp::kWrite, "/data/local/tmp/drakon.so",
                 3.0),
        FileStep(fennec, 7101, EventOp::kRead, "/data/local/tmp/drakon.so",
                 5.0),
    };
    c.attack_base_time = 900 * kSec;
    c.benign = Noise(240, 102);
    c.seed = 102;
    cases.push_back(std::move(c));
  }

  // ------------------------------------------------------- tc_clearscope_3
  {
    AttackCase c;
    c.id = "tc_clearscope_3";
    c.name = "20180413 ClearScope";
    c.oscti_text =
        "During the engagement the media scanner com.android.providers.media "
        "accessed the database /sdcard/DCIM/.hidden/private.db on the "
        "infected phone.";
    c.gt_iocs = {"com.android.providers.media",
                 "/sdcard/DCIM/.hidden/private.db"};
    c.gt_relations = {
        {"com.android.providers.media", "access",
         "/sdcard/DCIM/.hidden/private.db"},
    };
    c.attack_steps = {
        FileStep("com.android.providers.media", 7201, EventOp::kRead,
                 "/sdcard/DCIM/.hidden/private.db", 1.0),
    };
    c.attack_base_time = 1200 * kSec;
    c.benign = Noise(220, 103);
    c.seed = 103;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------- tc_fivedirections_1
  {
    AttackCase c;
    c.id = "tc_fivedirections_1";
    c.name = "20180409 1500 FiveDirections - Phishing E-mail w/ Excel Macro";
    c.oscti_text =
        "The victim opened a phishing e-mail and saved the attachment "
        R"(C:\Users\victim\Downloads\invoice.xlsm. excel.exe read )"
        R"(C:\Users\victim\Downloads\invoice.xlsm and the embedded macro )"
        R"(wrote the implant C:\Users\victim\AppData\Roaming\msupdate.exe. )"
        "excel.exe then started msupdate.exe. msupdate.exe connected to "
        "78.205.235.65 and beaconed continuously.";
    c.gt_iocs = {R"(C:\Users\victim\Downloads\invoice.xlsm)", "excel.exe",
                 R"(C:\Users\victim\AppData\Roaming\msupdate.exe)",
                 "78.205.235.65"};
    c.gt_relations = {
        {"excel.exe", "read", R"(C:\Users\victim\Downloads\invoice.xlsm)"},
        {"excel.exe", "write",
         R"(C:\Users\victim\AppData\Roaming\msupdate.exe)"},
        {"excel.exe", "start",
         R"(C:\Users\victim\AppData\Roaming\msupdate.exe)"},
        {R"(C:\Users\victim\AppData\Roaming\msupdate.exe)", "connect",
         "78.205.235.65"},
    };
    const char* excel = "excel.exe";
    const char* impl = R"(C:\Users\victim\AppData\Roaming\msupdate.exe)";
    c.attack_steps = {
        FileStep(excel, 7301, EventOp::kRead,
                 R"(C:\Users\victim\Downloads\invoice.xlsm)", 1.0),
        FileStep(excel, 7301, EventOp::kWrite, impl, 3.0),
        FileStep(excel, 7301, EventOp::kExecute, impl, 5.0, 0, 1),
    };
    Beacon(&c.attack_steps, impl, 7302, EventOp::kConnect, "78.205.235.65",
           443, 8.0, 48);
    c.attack_base_time = 1500 * kSec;
    c.benign = Noise(320, 104);
    c.seed = 104;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------- tc_fivedirections_2
  {
    AttackCase c;
    c.id = "tc_fivedirections_2";
    c.name =
        "20180411 1000 FiveDirections - Firefox Backdoor w/ Drakon In-Memory";
    c.oscti_text =
        "The attackers leveraged a Firefox backdoor on the Windows host. "
        "firefox.exe retrieved the Drakon stage from 161.116.88.72 and wrote "
        R"(the payload to C:\Users\victim\AppData\Local\Temp\drakon_x64.dll. )"
        R"(firefox.exe then loaded C:\Users\victim\AppData\Local\Temp\drakon_x64.dll.)";
    c.gt_iocs = {"firefox.exe", "161.116.88.72",
                 R"(C:\Users\victim\AppData\Local\Temp\drakon_x64.dll)"};
    c.gt_relations = {
        {"firefox.exe", "retrieve", "161.116.88.72"},
        {"firefox.exe", "write",
         R"(C:\Users\victim\AppData\Local\Temp\drakon_x64.dll)"},
        {"firefox.exe", "load",
         R"(C:\Users\victim\AppData\Local\Temp\drakon_x64.dll)"},
    };
    const char* ff = "firefox.exe";
    const char* dll = R"(C:\Users\victim\AppData\Local\Temp\drakon_x64.dll)";
    c.attack_steps = {
        NetStep(ff, 7401, EventOp::kRead, "161.116.88.72", 443, 1.0),
        FileStep(ff, 7401, EventOp::kWrite, dll, 3.0),
        FileStep(ff, 7401, EventOp::kRead, dll, 5.0),
    };
    c.attack_base_time = 700 * kSec;
    c.benign = Noise(300, 105);
    c.seed = 105;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------- tc_fivedirections_3
  {
    AttackCase c;
    c.id = "tc_fivedirections_3";
    c.name =
        "20180412 1100 FiveDirections - Browser Extension w/ Drakon Dropper";
    // The report names burnout.exe / .116, but the deployed sample was
    // renamed brnout.exe and the C2 moved to .117: exact search finds
    // nothing (the IOC-deviation phenomenon motivating fuzzy search).
    c.oscti_text =
        "The malicious browser extension staged the Drakon dropper on the "
        "FiveDirections host. nativemsg.exe wrote "
        R"(C:\Users\victim\AppData\Local\Temp\burnout.exe and started )"
        "burnout.exe afterwards. burnout.exe connected to 139.44.203.116.";
    c.gt_iocs = {"nativemsg.exe",
                 R"(C:\Users\victim\AppData\Local\Temp\burnout.exe)",
                 "139.44.203.116"};
    c.gt_relations = {
        {"nativemsg.exe", "write",
         R"(C:\Users\victim\AppData\Local\Temp\burnout.exe)"},
        {"nativemsg.exe", "start",
         R"(C:\Users\victim\AppData\Local\Temp\burnout.exe)"},
        {R"(C:\Users\victim\AppData\Local\Temp\burnout.exe)", "connect",
         "139.44.203.116"},
    };
    const char* drop = R"(C:\Users\victim\AppData\Local\Temp\brnout.exe)";
    c.attack_steps = {
        FileStep("nativemsg.exe", 7501, EventOp::kWrite, drop, 1.0),
        FileStep("nativemsg.exe", 7501, EventOp::kExecute, drop, 3.0, 0, 1),
        NetStep(drop, 7502, EventOp::kConnect, "139.44.203.117", 443, 5.0),
    };
    c.attack_base_time = 1100 * kSec;
    c.benign = Noise(280, 106);
    c.seed = 106;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------------- tc_theia_1
  {
    AttackCase c;
    c.id = "tc_theia_1";
    c.name = "20180410 1400 THEIA - Firefox Backdoor w/ Drakon In-Memory";
    c.oscti_text =
        "THEIA hosts ran a vulnerable Firefox build. The attacker used the "
        "backdoored /usr/lib/firefox/firefox to fetch shellcode from "
        "141.43.176.203. /usr/lib/firefox/firefox wrote the reflective "
        "loader to /home/admin/profile.bak and executed "
        "/home/admin/profile.bak.";
    c.gt_iocs = {"/usr/lib/firefox/firefox", "141.43.176.203",
                 "/home/admin/profile.bak"};
    c.gt_relations = {
        {"/usr/lib/firefox/firefox", "fetch", "141.43.176.203"},
        {"/usr/lib/firefox/firefox", "write", "/home/admin/profile.bak"},
        {"/usr/lib/firefox/firefox", "execute", "/home/admin/profile.bak"},
    };
    const char* ff = "/usr/lib/firefox/firefox";
    c.attack_steps = {
        NetStep(ff, 7601, EventOp::kRead, "141.43.176.203", 443, 1.0),
        FileStep(ff, 7601, EventOp::kWrite, "/home/admin/profile.bak", 3.0),
        FileStep(ff, 7601, EventOp::kExecute, "/home/admin/profile.bak", 5.0,
                 0, 1),
    };
    c.attack_base_time = 400 * kSec;
    c.benign = Noise(600, 107);
    c.seed = 107;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------------- tc_theia_2
  {
    AttackCase c;
    c.id = "tc_theia_2";
    c.name = "20180410 1300 THEIA - Phishing Email w/ Link";
    c.oscti_text =
        "The user visited a phishing page on the THEIA host. The browser "
        "/usr/bin/thunderclap fetched the malicious payload from "
        "98.23.182.25 over many sessions. /usr/bin/thunderclap wrote the "
        "payload to /home/admin/.mailcache and executed "
        "/home/admin/.mailcache. /home/admin/.mailcache gathered documents "
        "from /home/admin/docs.tar and sent the stolen data to 98.23.182.25.";
    c.gt_iocs = {"/usr/bin/thunderclap", "98.23.182.25",
                 "/home/admin/.mailcache", "/home/admin/docs.tar"};
    c.gt_relations = {
        {"/usr/bin/thunderclap", "fetch", "98.23.182.25"},
        {"/usr/bin/thunderclap", "write", "/home/admin/.mailcache"},
        {"/usr/bin/thunderclap", "execute", "/home/admin/.mailcache"},
        {"/home/admin/.mailcache", "gather", "/home/admin/docs.tar"},
        {"/home/admin/.mailcache", "send", "98.23.182.25"},
    };
    const char* tc = "/usr/bin/thunderclap";
    const char* mc = "/home/admin/.mailcache";
    c.attack_steps = {
        FileStep(tc, 7701, EventOp::kWrite, mc, 160.0),
        FileStep(tc, 7701, EventOp::kExecute, mc, 163.0, 0, 1),
        FileStep(mc, 7702, EventOp::kRead, "/home/admin/docs.tar", 166.0),
    };
    Beacon(&c.attack_steps, tc, 7701, EventOp::kRead, "98.23.182.25", 443,
           1.0, 60);
    Beacon(&c.attack_steps, mc, 7702, EventOp::kSend, "98.23.182.25", 443,
           170.0, 52);
    c.attack_base_time = 500 * kSec;
    c.benign = Noise(620, 108);
    c.seed = 108;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------------- tc_theia_3
  {
    AttackCase c;
    c.id = "tc_theia_3";
    c.name = "20180412 THEIA - Browser Extension w/ Drakon Dropper";
    c.oscti_text =
        "A rogue browser extension delivered the Drakon dropper to the "
        "THEIA host. The helper /usr/bin/gtcache wrote the dropper "
        "/home/admin/.cache/drop.bin, and /home/admin/.cache/drop.bin "
        "connected to 141.43.176.8. /home/admin/.cache/drop.bin also "
        "renamed /var/log/mail.log to cover its tracks.";
    c.gt_iocs = {"/usr/bin/gtcache", "/home/admin/.cache/drop.bin",
                 "141.43.176.8", "/var/log/mail.log"};
    c.gt_relations = {
        {"/usr/bin/gtcache", "write", "/home/admin/.cache/drop.bin"},
        {"/home/admin/.cache/drop.bin", "connect", "141.43.176.8"},
        {"/home/admin/.cache/drop.bin", "rename", "/var/log/mail.log"},
    };
    const char* drop = "/home/admin/.cache/drop.bin";
    c.attack_steps = {
        FileStep("/usr/bin/gtcache", 7801, EventOp::kWrite, drop, 1.0),
        NetStep(drop, 7802, EventOp::kConnect, "141.43.176.8", 443, 3.0),
        FileStep(drop, 7802, EventOp::kRename, "/var/log/mail.log", 5.0, 0, 1),
    };
    c.attack_base_time = 800 * kSec;
    c.benign = Noise(580, 109);
    c.seed = 109;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------------- tc_theia_4
  {
    AttackCase c;
    c.id = "tc_theia_4";
    c.name = "20180413 1400 THEIA - Phishing E-mail w/ Executable Attachment";
    c.oscti_text =
        "The phishing e-mail carried an executable attachment. The mail "
        "agent /usr/bin/mutt saved the attachment to "
        "/home/admin/invoice.pdf.exe and then executed "
        "/home/admin/invoice.pdf.exe. /home/admin/invoice.pdf.exe beaconed "
        "to 82.93.155.40 over the following hours.";
    c.gt_iocs = {"/usr/bin/mutt", "/home/admin/invoice.pdf.exe",
                 "82.93.155.40"};
    c.gt_relations = {
        {"/usr/bin/mutt", "save", "/home/admin/invoice.pdf.exe"},
        {"/usr/bin/mutt", "execute", "/home/admin/invoice.pdf.exe"},
        {"/home/admin/invoice.pdf.exe", "beacon", "82.93.155.40"},
    };
    const char* att = "/home/admin/invoice.pdf.exe";
    c.attack_steps = {
        FileStep("/usr/bin/mutt", 7901, EventOp::kWrite, att, 1.0),
        FileStep("/usr/bin/mutt", 7901, EventOp::kExecute, att, 3.0, 0, 1),
    };
    Beacon(&c.attack_steps, att, 7902, EventOp::kConnect, "82.93.155.40", 443,
           6.0, 419, 2.1);
    c.attack_base_time = 300 * kSec;
    c.benign = Noise(640, 110);
    c.seed = 110;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------------- tc_trace_1
  {
    AttackCase c;
    c.id = "tc_trace_1";
    c.name = "20180410 1000 TRACE - Firefox Backdoor w/ Drakon In-Memory";
    // The "run" self-loop on /home/admin/cache is extracted correctly, but
    // query synthesis cannot tell a file `execute` event from a process
    // `start` event; the default plan picks `execute`, so the 37 process
    // start events are missed (the paper's tc_trace_1 false negatives).
    c.oscti_text =
        "The TRACE host ran a backdoored Firefox. /usr/lib/firefox/firefox "
        "fetched the implant from 146.153.68.151 and wrote it to "
        "/home/admin/cache. The implant /home/admin/cache repeatedly ran "
        "/home/admin/cache to respawn itself, and /home/admin/cache "
        "connected to 146.153.68.151 after every restart.";
    c.gt_iocs = {"/usr/lib/firefox/firefox", "146.153.68.151",
                 "/home/admin/cache"};
    c.gt_relations = {
        {"/usr/lib/firefox/firefox", "fetch", "146.153.68.151"},
        {"/usr/lib/firefox/firefox", "write", "/home/admin/cache"},
        {"/home/admin/cache", "run", "/home/admin/cache"},
        {"/home/admin/cache", "connect", "146.153.68.151"},
    };
    const char* ff = "/usr/lib/firefox/firefox";
    const char* cache = "/home/admin/cache";
    c.attack_steps = {
        NetStep(ff, 8001, EventOp::kRead, "146.153.68.151", 443, 1.0),
        FileStep(ff, 8001, EventOp::kWrite, cache, 3.0),
    };
    for (int i = 0; i < 37; ++i) {
      // Respawn chain: each generation starts the next (process events).
      c.attack_steps.push_back(
          StartStep(cache, 8100 + i, cache, 8101 + i, 6.0 + i * 4.0));
      c.attack_steps.push_back(NetStep(cache, 8101 + i, EventOp::kConnect,
                                       "146.153.68.151", 443, 8.0 + i * 4.0));
    }
    c.attack_base_time = 200 * kSec;
    c.benign = Noise(900, 111);
    c.seed = 111;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------------- tc_trace_2
  {
    AttackCase c;
    c.id = "tc_trace_2";
    c.name = "20180410 1200 TRACE - Phishing E-mail Link";
    c.oscti_text =
        "The user clicked the phishing link on the TRACE host. The browser "
        "/usr/bin/konq fetched the exploit page from 155.162.39.48, wrote "
        "the loader to /tmp/.kload, and executed /tmp/.kload. /tmp/.kload "
        "collected keys from /home/admin/.ssh/id_rsa and sent the keys to "
        "155.162.39.48.";
    c.gt_iocs = {"/usr/bin/konq", "155.162.39.48", "/tmp/.kload",
                 "/home/admin/.ssh/id_rsa"};
    c.gt_relations = {
        {"/usr/bin/konq", "fetch", "155.162.39.48"},
        {"/usr/bin/konq", "write", "/tmp/.kload"},
        {"/usr/bin/konq", "execute", "/tmp/.kload"},
        {"/tmp/.kload", "collect", "/home/admin/.ssh/id_rsa"},
        {"/tmp/.kload", "send", "155.162.39.48"},
    };
    const char* konq = "/usr/bin/konq";
    const char* kload = "/tmp/.kload";
    c.attack_steps = {
        NetStep(konq, 8201, EventOp::kRead, "155.162.39.48", 443, 1.0),
        FileStep(konq, 8201, EventOp::kWrite, kload, 3.0),
        FileStep(konq, 8201, EventOp::kExecute, kload, 5.0, 0, 1),
    };
    RepeatFile(&c.attack_steps, kload, 8202, EventOp::kRead,
               "/home/admin/.ssh/id_rsa", 8.0, 2);
    Beacon(&c.attack_steps, kload, 8202, EventOp::kSend, "155.162.39.48", 443,
           14.0, 2);
    c.attack_base_time = 900 * kSec;
    c.benign = Noise(880, 112);
    c.seed = 112;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------------- tc_trace_3
  {
    AttackCase c;
    c.id = "tc_trace_3";
    c.name = "20180412 1300 TRACE - Browser Extension w/ Drakon Dropper";
    // The report names /tmp/tcexec; the sample on disk was /tmp/.tcexec.
    c.oscti_text =
        "TRACE analysts observed the browser extension dropper. The staging "
        "process /usr/bin/xsession wrote the implant to /tmp/tcexec on the "
        "host.";
    c.gt_iocs = {"/usr/bin/xsession", "/tmp/tcexec"};
    c.gt_relations = {
        {"/usr/bin/xsession", "write", "/tmp/tcexec"},
    };
    c.attack_steps = {};
    RepeatFile(&c.attack_steps, "/usr/bin/xsession", 8301, EventOp::kWrite,
               "/tmp/.tcexec", 1.0, 2);
    c.attack_base_time = 1000 * kSec;
    c.benign = Noise(860, 113);
    c.seed = 113;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------------- tc_trace_4
  {
    AttackCase c;
    c.id = "tc_trace_4";
    c.name = "20180413 1200 TRACE - Pine Backdoor w/ Drakon Dropper";
    // The report only covers the mailbox read; the dropper write and the
    // C2 connection went unreported (2 false negatives).
    c.oscti_text =
        "The Pine mail agent on TRACE carried the Drakon dropper. The "
        "backdoored binary /usr/bin/pine read the mailbox /var/mail/root "
        "during the engagement.";
    c.gt_iocs = {"/usr/bin/pine", "/var/mail/root"};
    c.gt_relations = {
        {"/usr/bin/pine", "read", "/var/mail/root"},
    };
    c.attack_steps = {
        FileStep("/usr/bin/pine", 8401, EventOp::kRead, "/var/mail/root", 1.0),
        FileStep("/usr/bin/pine", 8401, EventOp::kWrite, "/tmp/.pineexec",
                 3.0),
        NetStep("/tmp/.pineexec", 8402, EventOp::kConnect, "146.153.68.200",
                443, 5.0),
    };
    c.attack_base_time = 1300 * kSec;
    c.benign = Noise(840, 114);
    c.seed = 114;
    cases.push_back(std::move(c));
  }

  // --------------------------------------------------------- tc_trace_5
  {
    AttackCase c;
    c.id = "tc_trace_5";
    c.name = "20180413 1400 TRACE - Phishing E-mail w/ Executable Attachment";
    c.oscti_text =
        "The phishing message delivered an executable attachment to the "
        "TRACE host. The mail client /usr/bin/pine saved the attachment to "
        "/home/admin/tcpay.exe and executed /home/admin/tcpay.exe. "
        "/home/admin/tcpay.exe read the staging archive "
        "/home/admin/.stage.tar and exfiltrated the stolen data to "
        "146.153.68.99 in small chunks.";
    c.gt_iocs = {"/usr/bin/pine", "/home/admin/tcpay.exe",
                 "/home/admin/.stage.tar", "146.153.68.99"};
    c.gt_relations = {
        {"/usr/bin/pine", "save", "/home/admin/tcpay.exe"},
        {"/usr/bin/pine", "execute", "/home/admin/tcpay.exe"},
        {"/home/admin/tcpay.exe", "read", "/home/admin/.stage.tar"},
        {"/home/admin/tcpay.exe", "exfiltrate", "146.153.68.99"},
    };
    const char* pay = "/home/admin/tcpay.exe";
    c.attack_steps = {
        FileStep("/usr/bin/pine", 8501, EventOp::kWrite, pay, 1.0),
        FileStep("/usr/bin/pine", 8501, EventOp::kExecute, pay, 3.0, 0, 1),
    };
    RepeatFile(&c.attack_steps, pay, 8502, EventOp::kRead,
               "/home/admin/.stage.tar", 6.0, 2);
    Beacon(&c.attack_steps, pay, 8502, EventOp::kSend, "146.153.68.99", 443,
           12.0, 574, 2.1);
    c.attack_base_time = 100 * kSec;
    c.benign = Noise(920, 115);
    c.seed = 115;
    cases.push_back(std::move(c));
  }

  // ------------------------------------------------------- password_crack
  {
    AttackCase c;
    c.id = "password_crack";
    c.name = "Password Cracking After Shellshock Penetration";
    // The libfoo.so sentence is faithfully extracted but describes a step
    // that never produced an event (excessive pattern, retrieves nothing);
    // the EXIF decode and the unzip steps went unreported (false negatives).
    c.oscti_text =
        "The attacker penetrated the server by exploiting the Shellshock "
        "vulnerability CVE-2014-6271. The compromised service "
        "/usr/sbin/httpd fetched an image from 162.125.4.18 and wrote the "
        "image to /tmp/cloud.jpg. The C2 address was encoded in the EXIF "
        "metadata of /tmp/cloud.jpg.\n\n"
        "Using the decoded address, /usr/sbin/httpd downloaded the cracker "
        "archive /tmp/john.zip from 184.105.182.21. The exploit library "
        "/tmp/libfoo.so wrote the archive /tmp/john.zip. The attacker "
        "extracted the cracker to /tmp/john/john. /tmp/john/john read the "
        "shadow file /etc/shadow and wrote the recovered passwords to "
        "/tmp/passwds.txt.";
    c.gt_iocs = {"CVE-2014-6271",  "/usr/sbin/httpd", "162.125.4.18",
                 "/tmp/cloud.jpg", "/tmp/john.zip",   "184.105.182.21",
                 "/tmp/libfoo.so", "/tmp/john/john",  "/etc/shadow",
                 "/tmp/passwds.txt"};
    c.gt_relations = {
        {"/usr/sbin/httpd", "fetch", "162.125.4.18"},
        {"/usr/sbin/httpd", "write", "/tmp/cloud.jpg"},
        {"/usr/sbin/httpd", "download", "/tmp/john.zip"},
        {"/usr/sbin/httpd", "download", "184.105.182.21"},
        {"/tmp/john.zip", "download", "184.105.182.21"},
        {"/tmp/libfoo.so", "write", "/tmp/john.zip"},
        {"/tmp/john/john", "read", "/etc/shadow"},
        {"/tmp/john/john", "write", "/tmp/passwds.txt"},
    };
    const char* httpd = "/usr/sbin/httpd";
    const char* john = "/tmp/john/john";
    c.attack_steps = {
        NetStep(httpd, 8601, EventOp::kRead, "162.125.4.18", 443, 1.0),
        FileStep(httpd, 8601, EventOp::kWrite, "/tmp/cloud.jpg", 3.0),
        NetStep(httpd, 8601, EventOp::kRead, "184.105.182.21", 443, 7.0),
        FileStep(httpd, 8601, EventOp::kWrite, "/tmp/john.zip", 9.0),
        FileStep("/usr/bin/unzip", 8602, EventOp::kRead, "/tmp/john.zip",
                 11.0),
        FileStep("/usr/bin/unzip", 8602, EventOp::kWrite, john, 13.0),
        FileStep(john, 8603, EventOp::kWrite, "/tmp/passwds.txt", 30.0),
    };
    RepeatFile(&c.attack_steps, john, 8603, EventOp::kRead, "/etc/shadow",
               16.0, 5);
    c.attack_base_time = 450 * kSec;
    c.benign = Noise(400, 116);
    c.seed = 116;
    cases.push_back(std::move(c));
  }

  // ------------------------------------------------------------ data_leak
  {
    AttackCase c;
    c.id = "data_leak";
    c.name = "Data Leakage After Shellshock Penetration";
    // The report omits the file-system scan and the final bulk transfer
    // (2 false negatives); the 6 described steps are all found.
    c.oscti_text =
        "After the lateral movement stage, the attacker attempted to steal "
        "valuable assets from the host. As a first step, the attacker used "
        "/bin/tar to read user credentials from /etc/passwd. It wrote the "
        "gathered information to a file /tmp/upload.tar. Then /bin/bzip2 "
        "read from /tmp/upload.tar and wrote to /tmp/upload.tar.bz2. "
        "Finally, the attacker leveraged the curl utility /usr/bin/curl to "
        "read the archive from /tmp/upload.tar.bz2 and connect to "
        "192.168.29.128.";
    c.gt_iocs = {"/bin/tar", "/etc/passwd", "/tmp/upload.tar", "/bin/bzip2",
                 "/tmp/upload.tar.bz2", "/usr/bin/curl", "192.168.29.128"};
    c.gt_relations = {
        {"/bin/tar", "read", "/etc/passwd"},
        {"/bin/tar", "write", "/tmp/upload.tar"},
        {"/bin/bzip2", "read", "/tmp/upload.tar"},
        {"/bin/bzip2", "write", "/tmp/upload.tar.bz2"},
        {"/usr/bin/curl", "read", "/tmp/upload.tar.bz2"},
        {"/usr/bin/curl", "connect", "192.168.29.128"},
    };
    c.attack_steps = {
        FileStep("/usr/bin/find", 8701, EventOp::kRead,
                 "/home/admin/projects.tar", 0.0),  // unreported scan
        FileStep("/bin/tar", 8702, EventOp::kRead, "/etc/passwd", 2.0),
        FileStep("/bin/tar", 8702, EventOp::kWrite, "/tmp/upload.tar", 4.0),
        FileStep("/bin/bzip2", 8703, EventOp::kRead, "/tmp/upload.tar", 6.0),
        FileStep("/bin/bzip2", 8703, EventOp::kWrite, "/tmp/upload.tar.bz2",
                 8.0),
        FileStep("/usr/bin/curl", 8704, EventOp::kRead, "/tmp/upload.tar.bz2",
                 10.0),
        NetStep("/usr/bin/curl", 8704, EventOp::kConnect, "192.168.29.128",
                443, 12.0),
        NetStep("/usr/bin/curl", 8704, EventOp::kSend, "192.168.29.128", 443,
                14.0, 1 << 20),  // unreported bulk transfer
    };
    c.attack_base_time = 777 * kSec;
    c.benign = Noise(420, 117);
    c.seed = 117;
    cases.push_back(std::move(c));
  }

  // ------------------------------------------------------------ vpnfilter
  {
    AttackCase c;
    c.id = "vpnfilter";
    c.name = "VPNFilter";
    c.oscti_text =
        "The attacker maintained direct access to the victim device with "
        "the VPNFilter malware. The stage one malware /tmp/vpnf downloaded "
        "a picture from 94.242.222.68 and wrote it to /tmp/pic.jpg. The "
        "address of the stage two server was hidden in the EXIF fields, so "
        "/tmp/vpnf read /tmp/pic.jpg to recover it. /tmp/vpnf then "
        "downloaded the stage two module /tmp/vpnf2 from 91.121.109.209. "
        "/tmp/vpnf executed /tmp/vpnf2, and /tmp/vpnf2 connected to "
        "94.242.222.68.";
    c.gt_iocs = {"/tmp/vpnf", "94.242.222.68", "/tmp/pic.jpg", "/tmp/vpnf2",
                 "91.121.109.209"};
    c.gt_relations = {
        {"/tmp/vpnf", "download", "94.242.222.68"},
        {"/tmp/vpnf", "write", "/tmp/pic.jpg"},
        {"/tmp/vpnf", "read", "/tmp/pic.jpg"},
        {"/tmp/vpnf", "download", "/tmp/vpnf2"},
        {"/tmp/vpnf", "download", "91.121.109.209"},
        {"/tmp/vpnf2", "download", "91.121.109.209"},
        {"/tmp/vpnf", "execute", "/tmp/vpnf2"},
        {"/tmp/vpnf2", "connect", "94.242.222.68"},
    };
    const char* v1 = "/tmp/vpnf";
    const char* v2 = "/tmp/vpnf2";
    c.attack_steps = {
        NetStep(v1, 8801, EventOp::kRead, "94.242.222.68", 443, 1.0),
        FileStep(v1, 8801, EventOp::kWrite, "/tmp/pic.jpg", 3.0),
        FileStep(v1, 8801, EventOp::kRead, "/tmp/pic.jpg", 5.0),
        NetStep(v1, 8801, EventOp::kRead, "91.121.109.209", 443, 7.0),
        FileStep(v1, 8801, EventOp::kWrite, v2, 9.0),
        FileStep(v1, 8801, EventOp::kExecute, v2, 11.0, 0, 1),
    };
    Beacon(&c.attack_steps, v2, 8802, EventOp::kConnect, "94.242.222.68", 443,
           14.0, 172, 2.2);
    c.attack_base_time = 650 * kSec;
    c.benign = Noise(440, 118);
    c.seed = 118;
    cases.push_back(std::move(c));
  }

  return cases;
}

}  // namespace

const std::vector<AttackCase>& AllCases() {
  static const std::vector<AttackCase> kCases = BuildAllCases();
  return kCases;
}

const AttackCase* FindCase(std::string_view id) {
  for (const AttackCase& c : AllCases()) {
    if (c.id == id) return &c;
  }
  return nullptr;
}

std::vector<audit::SyscallRecord> BuildCaseLog(const AttackCase& c) {
  audit::BenignWorkloadSimulator benign;
  std::vector<audit::SyscallRecord> noise = benign.Generate(c.benign);
  std::vector<audit::SyscallRecord> attack =
      audit::CompileAttackScript(c.attack_steps, c.attack_base_time, c.seed);
  return audit::MergeStreams({std::move(noise), std::move(attack)});
}

std::set<long long> GroundTruthEventIds(const AttackCase& c,
                                        const storage::AuditStore& store) {
  // A stored event is ground truth iff it was produced by an attack step:
  // same subject (exe, pid), same operation, same object identity.
  struct Spec {
    std::string exe;
    long long pid;
    audit::EventOp op;
    std::string object_key;  // path / dstip / target exe
  };
  std::vector<Spec> specs;
  specs.reserve(c.attack_steps.size());
  for (const audit::AttackStep& s : c.attack_steps) {
    Spec spec;
    spec.exe = s.exe;
    spec.pid = s.pid;
    spec.op = s.op;
    if (!s.dst_ip.empty()) {
      spec.object_key = s.dst_ip;
    } else if (s.op == audit::EventOp::kStart) {
      spec.object_key = s.object_exe;
    } else {
      spec.object_key = s.object_path;
    }
    specs.push_back(std::move(spec));
  }

  std::set<long long> out;
  for (const audit::SystemEvent& ev : store.events()) {
    const audit::SystemEntity& subj = store.entities()[ev.subject - 1];
    const audit::SystemEntity& obj = store.entities()[ev.object - 1];
    for (const Spec& spec : specs) {
      if (spec.op != ev.op || spec.exe != subj.exename ||
          spec.pid != subj.pid) {
        continue;
      }
      std::string key;
      switch (obj.type) {
        case audit::EntityType::kFile: key = obj.name; break;
        case audit::EntityType::kNetwork: key = obj.dstip; break;
        case audit::EntityType::kProcess: key = obj.exename; break;
      }
      if (key == spec.object_key) {
        out.insert(static_cast<long long>(ev.id));
        break;
      }
    }
  }
  return out;
}

PrScore ScoreStrings(const std::vector<std::string>& extracted,
                     const std::vector<std::string>& ground_truth) {
  PrScore score;
  std::vector<bool> matched(ground_truth.size(), false);
  for (const std::string& e : extracted) {
    bool hit = false;
    for (size_t g = 0; g < ground_truth.size(); ++g) {
      if (!matched[g] && ground_truth[g] == e) {
        matched[g] = true;
        hit = true;
        break;
      }
    }
    hit ? ++score.tp : ++score.fp;
  }
  for (bool m : matched) {
    if (!m) ++score.fn;
  }
  return score;
}

PrScore ScoreRelations(const std::vector<GtRelation>& extracted,
                       const std::vector<GtRelation>& ground_truth) {
  PrScore score;
  std::vector<bool> matched(ground_truth.size(), false);
  for (const GtRelation& e : extracted) {
    bool hit = false;
    for (size_t g = 0; g < ground_truth.size(); ++g) {
      const GtRelation& gt = ground_truth[g];
      if (!matched[g] && gt.src == e.src && gt.verb == e.verb &&
          gt.dst == e.dst) {
        matched[g] = true;
        hit = true;
        break;
      }
    }
    hit ? ++score.tp : ++score.fp;
  }
  for (bool m : matched) {
    if (!m) ++score.fn;
  }
  return score;
}

void ScoreExtraction(const extraction::ExtractionResult& result,
                     const AttackCase& c, PrScore* entity_score,
                     PrScore* relation_score) {
  {
    PrScore score;
    std::vector<bool> matched(c.gt_iocs.size(), false);
    for (const extraction::IocEntity& e : result.iocs) {
      bool hit = false;
      for (size_t g = 0; g < c.gt_iocs.size(); ++g) {
        if (!matched[g] && e.Matches(c.gt_iocs[g])) {
          matched[g] = true;
          hit = true;
          break;
        }
      }
      hit ? ++score.tp : ++score.fp;
    }
    for (bool m : matched) {
      if (!m) ++score.fn;
    }
    *entity_score = score;
  }
  {
    PrScore score;
    std::vector<bool> matched(c.gt_relations.size(), false);
    for (const extraction::IocRelation& e : result.graph.edges()) {
      const extraction::IocEntity& src = result.graph.node(e.src);
      const extraction::IocEntity& dst = result.graph.node(e.dst);
      bool hit = false;
      for (size_t g = 0; g < c.gt_relations.size(); ++g) {
        const GtRelation& gt = c.gt_relations[g];
        if (!matched[g] && gt.verb == e.verb && src.Matches(gt.src) &&
            dst.Matches(gt.dst)) {
          matched[g] = true;
          hit = true;
          break;
        }
      }
      hit ? ++score.tp : ++score.fp;
    }
    for (bool m : matched) {
      if (!m) ++score.fn;
    }
    *relation_score = score;
  }
}

PrScore ScoreEvents(const std::vector<long long>& found,
                    const std::set<long long>& ground_truth) {
  PrScore score;
  for (long long id : found) {
    ground_truth.count(id) ? ++score.tp : ++score.fp;
  }
  score.fn = ground_truth.size() - score.tp;
  return score;
}

}  // namespace raptor::cases
