#include "synthesis/synthesizer.h"

#include <map>
#include <unordered_map>

#include "common/stopwatch.h"
#include "common/strings.h"

namespace raptor::synthesis {

namespace {

using extraction::IocEntity;
using extraction::IocRelation;
using extraction::ThreatBehaviorGraph;
using nlp::IocType;
using tbql::EntityType;

/// IOC types the system auditing component captures (Step 1 screening).
/// Domain-shaped IOCs are kept because Android package names (e.g.
/// com.android.defcontainer, the ClearScope cases) are process executable
/// names; pure network domains get screened at edge-mapping time (the
/// auditing layer records IPs, not DNS names).
bool IsAuditableIocType(IocType type) {
  switch (type) {
    case IocType::kFilepath:
    case IocType::kWinFilepath:
    case IocType::kFilename:
    case IocType::kIp:
    case IocType::kDomain:
      return true;
    case IocType::kUrl:
    case IocType::kEmail:
    case IocType::kHash:
    case IocType::kRegistry:
    case IocType::kCve:
      return false;
  }
  return false;
}

bool IsFileLike(IocType type) {
  return type == IocType::kFilepath || type == IocType::kWinFilepath ||
         type == IocType::kFilename;
}

}  // namespace

std::optional<std::string> MapIocRelation(const std::string& verb,
                                          IocType src_type,
                                          IocType dst_type) {
  (void)src_type;
  bool dst_ip = dst_type == IocType::kIp;
  bool dst_file = IsFileLike(dst_type);
  bool dst_package = dst_type == IocType::kDomain;

  // Process-creation verbs targeting a package-style name are process
  // `start` events (Android: "the mail client started
  // com.android.defcontainer").
  if (dst_package) {
    if (verb == "start" || verb == "launch" || verb == "spawn" ||
        verb == "run" || verb == "execute") {
      return "start";
    }
    return std::nullopt;  // network-domain sinks are not audited (no DNS)
  }

  // Read-flavoured verbs: the process consumes the object.
  if (verb == "read" || verb == "open" || verb == "access" || verb == "scan" ||
      verb == "load" || verb == "crack" || verb == "extract" ||
      verb == "gather" || verb == "collect" || verb == "steal" ||
      verb == "obtain" || verb == "retrieve" || verb == "fetch" ||
      verb == "get" || verb == "scrape" || verb == "harvest") {
    return "read";
  }
  // Write-flavoured verbs: the process produces/changes the object.
  if (verb == "write" || verb == "store" || verb == "save" ||
      verb == "create" || verb == "drop" || verb == "copy" ||
      verb == "modify" || verb == "compress" || verb == "encrypt" ||
      verb == "decrypt" || verb == "encode" || verb == "inject" ||
      verb == "place") {
    return "write";
  }
  // Download: direction depends on the endpoint types (Sec III-E Step 1).
  if (verb == "download" || verb == "deliver") {
    if (dst_ip) return "read";     // reading data from a network connection
    if (dst_file) return "write";  // writing the downloaded payload
    return std::nullopt;
  }
  // Upload / exfiltration verbs.
  if (verb == "upload" || verb == "transfer" || verb == "leak" ||
      verb == "exfiltrate" || verb == "send") {
    if (dst_ip) return "send";
    if (dst_file) return "write";
    return std::nullopt;
  }
  if (verb == "receive" || verb == "recv") {
    return dst_ip ? std::optional<std::string>("recv")
                  : std::optional<std::string>("read");
  }
  // Network session verbs.
  if (verb == "connect" || verb == "communicate" || verb == "beacon" ||
      verb == "visit" || verb == "request") {
    if (dst_ip) return "connect";
    return std::nullopt;
  }
  // Execution verbs. Note the ambiguity the paper reports for tc_trace_1:
  // "run" between two Filepath IOCs could be a file `execute` event or a
  // process `start` event; the default plan synthesizes `execute`.
  if (verb == "execute" || verb == "run" || verb == "launch" ||
      verb == "start" || verb == "spawn" || verb == "install") {
    if (dst_file) return "execute";
    return std::nullopt;
  }
  if (verb == "delete" || verb == "rename") {
    if (dst_file) return "rename";
    return std::nullopt;
  }
  // "use"-type verbs carry no system-level operation; they are screened.
  return std::nullopt;
}

Result<SynthesisResult> QuerySynthesizer::Synthesize(
    const ThreatBehaviorGraph& graph) const {
  Stopwatch timer;
  SynthesisResult result;

  // ---- Step 1: screening + relation mapping --------------------------------
  std::vector<bool> node_ok(graph.nodes().size(), false);
  for (const IocEntity& n : graph.nodes()) {
    node_ok[n.id] = IsAuditableIocType(n.type);
    if (!node_ok[n.id]) result.screened_nodes.push_back(n.id);
  }
  struct MappedEdge {
    const IocRelation* edge;
    std::string op;
  };
  std::vector<MappedEdge> mapped;
  for (const IocRelation& e : graph.edges()) {
    if (!node_ok[e.src] || !node_ok[e.dst]) {
      result.screened_edges.push_back(e.seq);
      continue;
    }
    std::optional<std::string> op;
    auto override_it = options_.verb_overrides.find(e.verb);
    if (override_it != options_.verb_overrides.end()) {
      op = override_it->second;
    } else {
      op = MapIocRelation(e.verb, graph.node(e.src).type,
                          graph.node(e.dst).type);
    }
    if (!op.has_value()) {
      result.screened_edges.push_back(e.seq);
      continue;
    }
    mapped.push_back({&e, std::move(*op)});
  }
  if (mapped.empty()) {
    return Status::InvalidArgument(
        "threat behavior graph has no auditable edges after screening");
  }

  // ---- Step 2: entity + pattern synthesis ----------------------------------
  // Node role keys: a node acting as a subject becomes a proc entity; as an
  // object it becomes a file / proc / ip entity depending on its type and
  // the mapped operation. The same node reuses one entity id per role kind.
  struct EntityKey {
    int node;
    EntityType type;
    // A `start` self-loop ("X ran X") names two process instances: the
    // running one and the started one. The started instance gets its own
    // entity (the paper's example pattern is `proc p1[...] start proc
    // p2[...]` with distinct ids).
    bool started_instance = false;
    bool operator<(const EntityKey& o) const {
      if (node != o.node) return node < o.node;
      if (type != o.type) return type < o.type;
      return started_instance < o.started_instance;
    }
  };
  std::map<EntityKey, std::string> entity_ids;
  std::unordered_map<std::string, bool> filter_emitted;
  int next_proc = 1, next_file = 1, next_ip = 1;

  auto entity_for = [&](int node, EntityType type,
                        bool started_instance = false) -> std::string {
    EntityKey key{node, type, started_instance};
    auto it = entity_ids.find(key);
    if (it != entity_ids.end()) return it->second;
    std::string id;
    switch (type) {
      case EntityType::kProcess: id = "p" + std::to_string(next_proc++); break;
      case EntityType::kFile: id = "f" + std::to_string(next_file++); break;
      case EntityType::kNetwork: id = "i" + std::to_string(next_ip++); break;
    }
    entity_ids.emplace(key, id);
    return id;
  };

  auto make_ref = [&](int node, EntityType type,
                      bool started_instance = false) -> tbql::EntityRef {
    tbql::EntityRef ref;
    ref.type = type;
    ref.id = entity_for(node, type, started_instance);
    if (!filter_emitted[ref.id]) {
      filter_emitted[ref.id] = true;
      auto filter = std::make_unique<tbql::AttrExpr>();
      filter->kind = tbql::AttrExprKind::kBareValue;
      const std::string& text = graph.node(node).text;
      // IP filters match exactly; file/process names get wildcards so the
      // pattern tolerates path prefixes recorded by auditing.
      if (type == EntityType::kNetwork || !options_.add_wildcards) {
        filter->value = text;
      } else {
        filter->value = "%" + text + "%";
      }
      ref.filter = std::move(filter);
    }
    return ref;
  };

  tbql::TbqlQuery& query = result.query;
  if (options_.window.has_value()) {
    query.global_windows.push_back(*options_.window);
  }
  std::vector<std::string> entity_order;  // for the return clause
  auto remember = [&](const std::string& id) {
    for (const std::string& e : entity_order) {
      if (e == id) return;
    }
    entity_order.push_back(id);
  };

  int evt_counter = 1;
  std::vector<std::string> event_ids;
  for (const MappedEdge& me : mapped) {
    const IocRelation& e = *me.edge;
    tbql::Pattern pattern;
    pattern.subject = make_ref(e.src, EntityType::kProcess);
    EntityType object_type;
    if (graph.node(e.dst).type == IocType::kIp) {
      object_type = EntityType::kNetwork;
    } else if (me.op == "start" ||
               graph.node(e.dst).type == IocType::kDomain) {
      object_type = EntityType::kProcess;
    } else {
      object_type = EntityType::kFile;
    }
    bool self_start = me.op == "start" && e.src == e.dst;
    pattern.object = make_ref(e.dst, object_type, self_start);
    auto op = std::make_unique<tbql::OpExpr>();
    op->kind = tbql::OpExprKind::kOp;
    op->op = me.op;
    pattern.op = std::move(op);
    if (options_.use_path_patterns) {
      pattern.path.is_path = true;
      pattern.path.fuzzy_arrow = true;
      pattern.path.min_len = 1;
      pattern.path.max_len = options_.path_max_len;
    } else {
      pattern.id = "evt" + std::to_string(evt_counter++);
      event_ids.push_back(pattern.id);
    }
    remember(pattern.subject.id);
    remember(pattern.object.id);
    query.patterns.push_back(std::move(pattern));
  }

  // ---- Step 3: temporal relationships (event patterns only) ----------------
  for (size_t i = 0; i + 1 < event_ids.size(); ++i) {
    tbql::TemporalRel rel;
    rel.left = event_ids[i];
    rel.op = tbql::TemporalOp::kBefore;
    rel.right = event_ids[i + 1];
    query.temporal_rels.push_back(std::move(rel));
  }

  // ---- Step 4: return synthesis ---------------------------------------------
  query.distinct = options_.return_distinct;
  for (const std::string& id : entity_order) {
    tbql::ReturnItem item;
    item.id = id;  // default attribute inferred at execution (sugar)
    query.returns.push_back(std::move(item));
  }

  result.tbql_text = query.ToString();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace raptor::synthesis
