// TBQL query synthesis (Sec III-E): turns an extracted threat behavior
// graph into an executable TBQL query.
//
//   Step 1  Pre-synthesis screening (drop IOC types the auditing layer does
//           not capture, e.g. registry keys / URLs / hashes) and IOC
//           relation mapping (verb + endpoint types -> TBQL operation).
//   Step 2  TBQL pattern synthesis (source nodes become proc entities,
//           sink nodes become file/proc/ip entities; IOC text becomes a
//           %-wildcarded default-attribute filter).
//   Step 3  Pattern relationship synthesis (temporal chain following the
//           edge sequence numbers; omitted for path patterns).
//   Step 4  Return synthesis (all entity ids, default attributes).
//
// A user-defined synthesis plan can override the defaults (path patterns
// instead of event patterns, extra global windows, no wildcards).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "extraction/behavior_graph.h"
#include "tbql/ast.h"

namespace raptor::synthesis {

struct SynthesisOptions {
  /// Synthesize variable-length event path patterns ("~>(1~max)") instead
  /// of basic event patterns. Bridges OSCTI steps that correspond to
  /// multi-event chains in the audit log.
  bool use_path_patterns = false;
  int path_max_len = 3;
  /// Wrap IOC strings in % wildcards (default plan).
  bool add_wildcards = true;
  bool return_distinct = true;
  /// Optional global time window to add (user-defined plan extension).
  std::optional<tbql::TimeWindow> window;
  /// User-defined relation overrides (human-in-the-loop revision): map an
  /// IOC relation verb directly to a TBQL operation, bypassing the default
  /// rules. E.g. {"run", "start"} resolves the execute-vs-start ambiguity
  /// the paper reports for tc_trace_1.
  std::map<std::string, std::string> verb_overrides;
};

struct SynthesisResult {
  tbql::TbqlQuery query;
  std::string tbql_text;
  /// Nodes dropped by pre-synthesis screening (unsupported IOC types).
  std::vector<int> screened_nodes;
  /// Edges dropped because their relation matched no mapping rule.
  std::vector<int> screened_edges;
  /// Table VII "Graph -> TBQL" stage time.
  double seconds = 0;
};

/// Maps an IOC relation verb plus its endpoint IOC types to a TBQL
/// operation name; empty optional when no rule matches (edge screened out).
std::optional<std::string> MapIocRelation(const std::string& verb,
                                          nlp::IocType src_type,
                                          nlp::IocType dst_type);

class QuerySynthesizer {
 public:
  explicit QuerySynthesizer(SynthesisOptions options = {})
      : options_(options) {}

  /// Synthesize a TBQL query from `graph`. Fails with InvalidArgument when
  /// screening leaves no usable edges.
  Result<SynthesisResult> Synthesize(
      const extraction::ThreatBehaviorGraph& graph) const;

 private:
  SynthesisOptions options_;
};

}  // namespace raptor::synthesis
