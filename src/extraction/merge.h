// IOC scan & merge (Step 8 of Algorithm 1): collect the IOC annotations of
// all trees across all blocks and merge surface variants of the same IOC
// (e.g. "/tmp/upload.tar" vs "upload.tar") using character-level overlap
// and word-vector semantic similarity, yielding the final IOC entity set.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "extraction/annotated_tree.h"
#include "extraction/behavior_graph.h"

namespace raptor::extraction {

struct MergeOptions {
  /// Minimum Levenshtein similarity for a fuzzy merge.
  double min_char_similarity = 0.93;
  /// Minimum word-vector cosine similarity for a fuzzy merge.
  double min_semantic_similarity = 0.70;
};

struct MergeResult {
  std::vector<IocEntity> entities;
  /// Surface form -> entity index.
  std::unordered_map<std::string, int> by_text;

  /// Entity index for a surface form, or -1.
  int Lookup(const std::string& text) const;
};

/// Scan all trees and merge similar IOCs. Path/file IOCs merge by suffix
/// containment ("/tmp/upload.tar" absorbs "upload.tar") or combined
/// char+semantic similarity; IPs, hashes and CVEs merge only on exact
/// equality (a one-character difference there is a different indicator).
MergeResult ScanMergeIocs(const std::vector<AnnotatedTree>& trees,
                          const MergeOptions& options = {});

}  // namespace raptor::extraction
