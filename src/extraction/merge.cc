#include "extraction/merge.h"

#include <algorithm>

#include "common/levenshtein.h"
#include "common/strings.h"
#include "nlp/wordvec.h"

namespace raptor::extraction {

namespace {

bool ExactOnlyType(nlp::IocType type) {
  return type == nlp::IocType::kIp || type == nlp::IocType::kHash ||
         type == nlp::IocType::kCve;
}

bool PathLike(nlp::IocType type) {
  return type == nlp::IocType::kFilepath ||
         type == nlp::IocType::kWinFilepath ||
         type == nlp::IocType::kFilename;
}

/// "/tmp/upload.tar" absorbs "upload.tar" (same trailing component).
bool SuffixContains(const std::string& longer, const std::string& shorter) {
  if (longer.size() <= shorter.size()) return false;
  if (!EndsWith(longer, shorter)) return false;
  char sep = longer[longer.size() - shorter.size() - 1];
  return sep == '/' || sep == '\\';
}

bool ShouldMerge(const IocEntity& entity, const nlp::IocMatch& ioc,
                 const MergeOptions& options) {
  if (entity.Matches(ioc.text)) return true;
  if (ExactOnlyType(entity.type) || ExactOnlyType(ioc.type)) return false;
  bool both_pathlike = PathLike(entity.type) && PathLike(ioc.type);
  if (!both_pathlike && entity.type != ioc.type) return false;
  if (SuffixContains(entity.text, ioc.text) ||
      SuffixContains(ioc.text, entity.text)) {
    return true;
  }
  double char_sim = LevenshteinSimilarity(entity.text, ioc.text);
  double sem_sim = nlp::WordSimilarity(entity.text, ioc.text);
  return char_sim >= options.min_char_similarity &&
         sem_sim >= options.min_semantic_similarity;
}

}  // namespace

int MergeResult::Lookup(const std::string& text) const {
  auto it = by_text.find(text);
  return it == by_text.end() ? -1 : it->second;
}

MergeResult ScanMergeIocs(const std::vector<AnnotatedTree>& trees,
                          const MergeOptions& options) {
  MergeResult result;
  for (const AnnotatedTree& at : trees) {
    for (const NodeAnnotation& ann : at.ann) {
      if (!ann.ioc.has_value()) continue;
      const nlp::IocMatch& ioc = *ann.ioc;
      if (result.by_text.count(ioc.text)) continue;
      int target = -1;
      for (size_t i = 0; i < result.entities.size(); ++i) {
        if (ShouldMerge(result.entities[i], ioc, options)) {
          target = static_cast<int>(i);
          break;
        }
      }
      if (target < 0) {
        IocEntity e;
        e.id = static_cast<int>(result.entities.size());
        e.text = ioc.text;
        e.type = ioc.type;
        result.entities.push_back(std::move(e));
        result.by_text.emplace(ioc.text, result.entities.back().id);
        continue;
      }
      IocEntity& e = result.entities[target];
      result.by_text.emplace(ioc.text, target);
      if (ioc.text.size() > e.text.size()) {
        // The longer surface form becomes canonical; demote the old one.
        e.aliases.push_back(e.text);
        e.text = ioc.text;
        // A bare file name absorbed into a full path adopts the path type.
        if (PathLike(e.type) && PathLike(ioc.type)) e.type = ioc.type;
      } else {
        e.aliases.push_back(ioc.text);
      }
    }
  }
  return result;
}

}  // namespace raptor::extraction
