// Threat behavior extraction pipeline — Algorithm 1 of the paper.
//
//   1. Block segmentation
//   2. IOC recognition & IOC protection
//   3. Sentence segmentation
//   4. Dependency parsing (+ restoration of protected IOCs onto trees)
//   5. Tree annotation (IOC nodes, candidate relation verbs)
//   6. Tree simplification
//   7. Coreference resolution (within a block)
//   8. IOC scan & merge (across blocks)
//   9. IOC relation extraction
//  10. Threat behavior graph construction
//
// The pipeline is unsupervised and lightweight: no trained models, only the
// general NLP substrate under src/nlp plus curated rules. Set
// `ioc_protection = false` to reproduce the Table V ablation.
#pragma once

#include <string_view>
#include <vector>

#include "common/status.h"
#include "extraction/annotated_tree.h"
#include "extraction/behavior_graph.h"
#include "extraction/merge.h"
#include "extraction/relation.h"

namespace raptor::extraction {

struct ExtractionOptions {
  /// Refang defanged indicators (192[.]168[.]1[.]1, hxxp://) before any
  /// processing, so defanged reports extract identically to plain ones.
  bool refang = true;
  /// Step 2: protect IOCs with a dummy word before NLP. Disabling this is
  /// the "ThreatRaptor - IOC Protection" ablation of Table V.
  bool ioc_protection = true;
  /// Step 6: skip trees without candidate relation verbs during relation
  /// extraction (pure speedup; does not change the output).
  bool simplify_trees = true;
  MergeOptions merge;
};

struct ExtractionTimings {
  /// Table VII "Text -> E. & R.": segmentation through relation extraction.
  double text_to_er_seconds = 0;
  /// Table VII "E. & R. -> Graph": behavior graph construction.
  double er_to_graph_seconds = 0;
};

struct ExtractionResult {
  std::vector<IocEntity> iocs;       // merged IOC entities (Step 8 output)
  std::vector<RawTriplet> triplets;  // relation triplets (Step 9 output)
  ThreatBehaviorGraph graph;         // Step 10 output
  ExtractionTimings timings;
  size_t trees_total = 0;
  size_t trees_relevant = 0;  // trees kept by Step 6
};

class ThreatBehaviorExtractor {
 public:
  explicit ThreatBehaviorExtractor(ExtractionOptions options = {})
      : options_(options) {}

  /// Run the full pipeline on an OSCTI report text.
  Result<ExtractionResult> Extract(std::string_view document) const;

 private:
  ExtractionOptions options_;
};

/// MITRE ATT&CK technique ids mentioned in a CTI report ("T1021",
/// "T1053.003", ...), deduplicated in order of first appearance. CTI text
/// routinely tags behaviors with technique ids; the hunt library uses them
/// to attach catalog metadata (tactic, severity) to synthesized hunts.
std::vector<std::string> FindAttackTechniqueIds(std::string_view text);

}  // namespace raptor::extraction
