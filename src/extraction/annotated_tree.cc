#include "extraction/annotated_tree.h"

#include <string>
#include <unordered_set>

namespace raptor::extraction {

bool IsRelationVerb(std::string_view lemma) {
  // Curated list of verbs that express IOC-to-IOC threat behaviors
  // (Step 5). Deliberately narrower than the POS lexicon's verb list:
  // e.g. "attempt"/"involve" are verbs but never IOC relations.
  static const std::unordered_set<std::string> kRelationVerbs = {
      "read",    "write",    "download", "upload",  "open",
      "execute", "launch",   "run",      "connect", "send",
      "receive", "transfer", "steal",    "exfiltrate", "compress",
      "encrypt", "decrypt",  "scan",     "copy",    "create",
      "spawn",   "drop",     "install",  "access",  "gather",
      "collect", "leak",     "fetch",    "retrieve", "delete",
      "rename",  "extract",  "store",    "save",    "inject",
      "modify",  "load",     "start",    "beacon",  "request",
      "use",     "leverage", "utilize",  "employ",  "communicate",
      "crack",   "scrape",   "visit",    "deliver", "obtain",
  };
  return kRelationVerbs.count(std::string(lemma)) > 0;
}

}  // namespace raptor::extraction
