// Threat behavior graph (Sec III-C): nodes are IOCs, edges are IOC
// relations tagged with a sequence number giving the step order of the
// threat. This is the structured representation the query synthesizer
// consumes.
#pragma once

#include <string>
#include <vector>

#include "nlp/ioc.h"

namespace raptor::extraction {

struct IocEntity {
  int id = 0;
  std::string text;                  // canonical (longest) surface form
  nlp::IocType type = nlp::IocType::kFilepath;
  std::vector<std::string> aliases;  // other surface forms merged into this

  bool Matches(std::string_view s) const;
};

struct IocRelation {
  int src = 0;        // IocEntity ids
  int dst = 0;
  std::string verb;   // lemmatized relation verb, e.g. "read"
  int seq = 0;        // 1-based step order (Step 10)
};

class ThreatBehaviorGraph {
 public:
  /// Adds a node; returns its id. Caller is responsible for dedup.
  int AddNode(IocEntity entity);

  /// Adds an edge between existing node ids; assigns the next sequence
  /// number. Duplicate (src, dst, verb) edges are ignored.
  void AddEdge(int src, int dst, std::string verb);

  const std::vector<IocEntity>& nodes() const { return nodes_; }
  const std::vector<IocRelation>& edges() const { return edges_; }

  const IocEntity& node(int id) const { return nodes_[id]; }

  /// Node id whose canonical text or alias equals `text`, or -1.
  int FindNode(std::string_view text) const;

  /// Human-readable rendering (one edge per line, in sequence order).
  std::string ToString() const;

  /// Graphviz dot rendering, for documentation and the demo example.
  std::string ToDot() const;

 private:
  std::vector<IocEntity> nodes_;
  std::vector<IocRelation> edges_;
};

}  // namespace raptor::extraction
