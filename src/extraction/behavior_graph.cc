#include "extraction/behavior_graph.h"

#include "common/strings.h"

namespace raptor::extraction {

bool IocEntity::Matches(std::string_view s) const {
  if (text == s) return true;
  for (const std::string& a : aliases) {
    if (a == s) return true;
  }
  return false;
}

int ThreatBehaviorGraph::AddNode(IocEntity entity) {
  entity.id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(entity));
  return nodes_.back().id;
}

void ThreatBehaviorGraph::AddEdge(int src, int dst, std::string verb) {
  for (const IocRelation& e : edges_) {
    if (e.src == src && e.dst == dst && e.verb == verb) return;
  }
  IocRelation rel;
  rel.src = src;
  rel.dst = dst;
  rel.verb = std::move(verb);
  rel.seq = static_cast<int>(edges_.size()) + 1;
  edges_.push_back(std::move(rel));
}

int ThreatBehaviorGraph::FindNode(std::string_view text) const {
  for (const IocEntity& n : nodes_) {
    if (n.Matches(text)) return n.id;
  }
  return -1;
}

std::string ThreatBehaviorGraph::ToString() const {
  std::string out;
  for (const IocRelation& e : edges_) {
    out += StrFormat("%d: %s[%s] -%s-> %s[%s]\n", e.seq,
                     nodes_[e.src].text.c_str(),
                     nlp::IocTypeName(nodes_[e.src].type), e.verb.c_str(),
                     nodes_[e.dst].text.c_str(),
                     nlp::IocTypeName(nodes_[e.dst].type));
  }
  for (const IocEntity& n : nodes_) {
    bool isolated = true;
    for (const IocRelation& e : edges_) {
      if (e.src == n.id || e.dst == n.id) {
        isolated = false;
        break;
      }
    }
    if (isolated) {
      out += StrFormat("-: %s[%s] (isolated)\n", n.text.c_str(),
                       nlp::IocTypeName(n.type));
    }
  }
  return out;
}

std::string ThreatBehaviorGraph::ToDot() const {
  std::string out = "digraph threat_behavior {\n  rankdir=LR;\n";
  for (const IocEntity& n : nodes_) {
    out += StrFormat("  n%d [label=\"%s\\n(%s)\"];\n", n.id, n.text.c_str(),
                     nlp::IocTypeName(n.type));
  }
  for (const IocRelation& e : edges_) {
    out += StrFormat("  n%d -> n%d [label=\"%s (%d)\"];\n", e.src, e.dst,
                     e.verb.c_str(), e.seq);
  }
  out += "}\n";
  return out;
}

}  // namespace raptor::extraction
