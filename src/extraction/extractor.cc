#include "extraction/extractor.h"

#include <algorithm>
#include <cctype>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "nlp/protect.h"
#include "nlp/refang.h"
#include "nlp/segment.h"
#include "nlp/tokenizer.h"

namespace raptor::extraction {

namespace {

using nlp::DepTree;
using nlp::Pos;

bool IsSubjectPronoun(const nlp::DepNode& node) {
  if (node.pos != Pos::kPron) return false;
  if (node.deprel != "nsubj" && node.deprel != "nsubjpass") return false;
  std::string lower = ToLower(node.text);
  return lower == "it" || lower == "he" || lower == "she" || lower == "they" ||
         lower == "this";
}

/// A node that could serve as a pronoun referent: an IOC that acted as a
/// subject or as the instrument (dobj of a use-verb) in its sentence.
bool IsReferentCandidate(const AnnotatedTree& at, size_t i) {
  if (!at.ann[i].ioc.has_value()) return false;
  const nlp::DepNode& n = at.tree.node(static_cast<int>(i));
  if (n.deprel == "nsubj" || n.deprel == "nsubjpass") return true;
  if (n.deprel == "dobj") {
    int h = n.head;
    if (h >= 0) {
      const std::string& lemma = at.tree.node(h).lemma;
      if (lemma == "use" || lemma == "leverage" || lemma == "utilize" ||
          lemma == "employ") {
        return true;
      }
    }
  }
  // IOC apposed to a subject noun phrase ("the tool /bin/tar ...").
  if (n.deprel == "appos" && n.head >= 0) {
    const std::string& hrel = at.tree.node(n.head).deprel;
    return hrel == "nsubj" || hrel == "nsubjpass";
  }
  return false;
}

/// Step 7: resolve subject pronouns to the most recent referent candidate
/// in the preceding trees of the same block.
void ResolveCoref(std::vector<AnnotatedTree>* trees) {
  for (size_t ti = 0; ti < trees->size(); ++ti) {
    AnnotatedTree& at = (*trees)[ti];
    for (size_t ni = 0; ni < at.tree.size(); ++ni) {
      if (!IsSubjectPronoun(at.tree.node(static_cast<int>(ni)))) continue;
      // Search backwards through earlier trees; within a tree take the
      // latest candidate.
      for (size_t back = ti; back-- > 0;) {
        const AnnotatedTree& ref = (*trees)[back];
        int found = -1;
        for (size_t ri = 0; ri < ref.tree.size(); ++ri) {
          if (IsReferentCandidate(ref, ri)) found = static_cast<int>(ri);
        }
        if (found >= 0) {
          at.ann[ni].coref_tree = static_cast<int>(back);
          at.ann[ni].coref_node = found;
          break;
        }
      }
    }
  }
}

}  // namespace

Result<ExtractionResult> ThreatBehaviorExtractor::Extract(
    std::string_view document) const {
  ExtractionResult result;
  Stopwatch stage_timer;

  std::vector<std::vector<AnnotatedTree>> block_groups;
  std::vector<nlp::Span> blocks = nlp::SegmentBlocks(document);

  for (size_t bi = 0; bi < blocks.size(); ++bi) {
    nlp::Span& block = blocks[bi];
    if (options_.refang) block.text = nlp::RefangText(block.text);
    // Step 2: IOC recognition + protection (or neither, in the ablation).
    nlp::ProtectedText protected_text;
    std::string_view working_text;
    if (options_.ioc_protection) {
      protected_text = nlp::ProtectIocs(block.text);
      working_text = protected_text.text;
    } else {
      working_text = block.text;
    }

    std::vector<AnnotatedTree> trees;
    for (const nlp::Span& sentence : nlp::SegmentSentences(working_text)) {
      // Step 4: parse.
      std::vector<nlp::Token> tokens = nlp::Tokenize(sentence.text);
      std::vector<Pos> tags = nlp::TagTokens(tokens);
      AnnotatedTree at;
      at.tree = nlp::ParseDependency(tokens, tags);
      at.ann.resize(at.tree.size());
      at.block_index = bi;
      at.sentence_offset = sentence.begin;

      // Step 5: annotate IOC nodes and candidate relation verbs. With
      // protection on, IOCs are restored from the replacement record; in
      // the ablation an IOC only survives if tokenization left it as one
      // intact token (this is where unprotected recall collapses).
      std::vector<nlp::IocMatch> raw_matches;
      if (!options_.ioc_protection) {
        raw_matches = nlp::RecognizeIocs(sentence.text);
      }
      for (size_t ni = 0; ni < at.tree.size(); ++ni) {
        const nlp::DepNode& node = at.tree.node(static_cast<int>(ni));
        if (options_.ioc_protection) {
          size_t global_off = sentence.begin + node.begin;
          const nlp::Replacement* rep = protected_text.FindAt(global_off);
          if (rep != nullptr && node.text == nlp::kDummyWord) {
            at.ann[ni].ioc = rep->ioc;
          }
        } else {
          for (const nlp::IocMatch& m : raw_matches) {
            if (m.begin == node.begin && m.end == node.end) {
              at.ann[ni].ioc = m;
              break;
            }
          }
        }
        if (node.pos == Pos::kVerb && IsRelationVerb(node.lemma)) {
          at.ann[ni].candidate_verb = true;
        }
      }

      // Step 6: simplification — trees without candidate verbs cannot yield
      // relations; flag them so Step 9 skips them.
      if (options_.simplify_trees) {
        bool has_verb = false;
        for (const NodeAnnotation& ann : at.ann) {
          has_verb |= ann.candidate_verb;
        }
        at.relevant = has_verb;
      }
      ++result.trees_total;
      if (at.relevant) ++result.trees_relevant;
      trees.push_back(std::move(at));
    }

    // Step 7: coreference within the block.
    ResolveCoref(&trees);
    block_groups.push_back(std::move(trees));
  }

  // Step 8: IOC scan & merge across all blocks.
  std::vector<AnnotatedTree> flat;
  for (const auto& group : block_groups) {
    for (const AnnotatedTree& at : group) flat.push_back(at);
  }
  MergeResult merged = ScanMergeIocs(flat, options_.merge);

  // Step 9: relation extraction per block.
  for (const auto& group : block_groups) {
    std::vector<RawTriplet> triplets = ExtractIocRelations(group, merged);
    result.triplets.insert(result.triplets.end(),
                           std::make_move_iterator(triplets.begin()),
                           std::make_move_iterator(triplets.end()));
  }
  result.iocs = merged.entities;
  result.timings.text_to_er_seconds = stage_timer.ElapsedSeconds();

  // Step 10: behavior graph construction, edges ordered by the occurrence
  // offset of the relation verb.
  stage_timer.Restart();
  std::stable_sort(result.triplets.begin(), result.triplets.end(),
                   [](const RawTriplet& a, const RawTriplet& b) {
                     return a.occurrence < b.occurrence;
                   });
  for (const IocEntity& e : result.iocs) {
    result.graph.AddNode(e);
  }
  for (const RawTriplet& t : result.triplets) {
    result.graph.AddEdge(t.src_entity, t.dst_entity, t.verb);
  }
  result.timings.er_to_graph_seconds = stage_timer.ElapsedSeconds();
  return result;
}

std::vector<std::string> FindAttackTechniqueIds(std::string_view text) {
  std::vector<std::string> out;
  auto is_digit = [](char c) { return c >= '0' && c <= '9'; };
  for (size_t i = 0; i + 4 < text.size(); ++i) {
    if (text[i] != 'T' || !is_digit(text[i + 1])) continue;
    // Technique ids are standalone tokens: no alphanumeric immediately
    // before (rules out "CVE-..." style embeddings and words ending in T).
    if (i > 0 && (std::isalnum(static_cast<unsigned char>(text[i - 1])) ||
                  text[i - 1] == '.')) {
      continue;
    }
    size_t j = i + 1;
    while (j < text.size() && is_digit(text[j])) ++j;
    if (j - (i + 1) != 4) continue;
    size_t end = j;
    // Optional ".NNN" sub-technique suffix.
    if (j + 3 < text.size() && text[j] == '.' && is_digit(text[j + 1]) &&
        is_digit(text[j + 2]) && is_digit(text[j + 3]) &&
        (j + 4 >= text.size() ||
         !std::isalnum(static_cast<unsigned char>(text[j + 4])))) {
      end = j + 4;
    } else if (j < text.size() &&
               std::isalnum(static_cast<unsigned char>(text[j]))) {
      continue;
    }
    std::string id(text.substr(i, end - i));
    if (std::find(out.begin(), out.end(), id) == out.end()) {
      out.push_back(std::move(id));
    }
    i = end - 1;
  }
  return out;
}

}  // namespace raptor::extraction
