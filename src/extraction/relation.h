// Dependency-parsing-based IOC relation extraction (Step 9 of Algorithm 1).
//
// For each pair of IOC nodes in a tree the algorithm inspects the three
// dependency-path parts (root->LCA, LCA->a, LCA->b), collects the annotated
// candidate relation verbs on them, selects the candidate closest to the
// object IOC, and validates the subject-object structure with a set of
// dependency-type rules (subject/instrument vs. direct/prepositional
// object, with passive and "use X to VERB" instrument handling). Verbs are
// emitted in lemma form.
#pragma once

#include <string>
#include <vector>

#include "extraction/annotated_tree.h"
#include "extraction/merge.h"

namespace raptor::extraction {

struct RawTriplet {
  int src_entity = 0;
  int dst_entity = 0;
  std::string verb;          // lemma
  uint64_t occurrence = 0;   // document-order key of the relation verb
};

/// Grammatical role of an IOC node relative to a selected relation verb.
enum class IocRole {
  kNone,
  kSubject,       // nsubj of the verb (or of a linked verb), passive agent
  kInstrument,    // dobj of a use-verb linked to the relation verb
  kDirectObject,  // dobj of the verb, or passive subject
  kPrepObject,    // pobj of a preposition attached to the verb
};

/// Role of `node` w.r.t. `verb` in the annotated tree (exposed for tests).
IocRole RoleOf(const AnnotatedTree& at, int node, int verb);

/// Extract all IOC relation triplets from the trees of one block.
/// `trees` must be the block's trees in order (coreference annotations
/// index into it); `iocs` maps surface forms to merged entities.
std::vector<RawTriplet> ExtractIocRelations(
    const std::vector<AnnotatedTree>& trees, const MergeResult& iocs);

}  // namespace raptor::extraction
