// Annotated dependency trees: the working representation of Algorithm 1
// between parsing (Step 4) and relation extraction (Step 9). Annotations
// mark IOC nodes (restored from the protection replacement record, Step 5),
// candidate relation verbs (Step 5), tree relevance (Step 6 simplification)
// and resolved coreferences (Step 7).
#pragma once

#include <optional>
#include <vector>

#include "nlp/depparse.h"
#include "nlp/ioc.h"

namespace raptor::extraction {

struct NodeAnnotation {
  /// IOC carried by this node (restored original match), if any.
  std::optional<nlp::IocMatch> ioc;
  /// True for annotated candidate relation verbs (curated keyword list).
  bool candidate_verb = false;
  /// Pronoun coreference: index of the tree (within the block) and node
  /// holding the referent IOC; -1 if unresolved / not a pronoun.
  int coref_tree = -1;
  int coref_node = -1;
};

struct AnnotatedTree {
  nlp::DepTree tree;
  std::vector<NodeAnnotation> ann;  // parallel to tree.nodes()
  size_t block_index = 0;
  size_t sentence_offset = 0;  // sentence start within the block text
  /// Tree simplification (Step 6): trees without candidate verbs are
  /// skipped by relation extraction (their IOCs still feed Step 8).
  bool relevant = true;

  /// Global ordering key for a node's occurrence in the document.
  uint64_t OccurrenceKey(int node) const {
    return (static_cast<uint64_t>(block_index) << 40) |
           (static_cast<uint64_t>(sentence_offset) << 20) |
           static_cast<uint64_t>(tree.node(node).begin);
  }
};

/// The curated candidate relation verb keyword list (Step 5). Lemma forms.
bool IsRelationVerb(std::string_view lemma);

}  // namespace raptor::extraction
