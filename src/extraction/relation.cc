#include "extraction/relation.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

#include "nlp/pos.h"

namespace raptor::extraction {

namespace {

using nlp::DepTree;

bool IsUseVerb(std::string_view lemma) {
  return lemma == "use" || lemma == "leverage" || lemma == "utilize" ||
         lemma == "employ";
}

/// True when x and y are verbs connected through a clause-link chain
/// (xcomp / conj / pcomp / advcl / relcl / acl / prep hops), i.e. they
/// describe facets of the same eventuality ("used X *to read* Y from Z").
bool VerbsLinked(const DepTree& t, int x, int y) {
  if (x < 0 || y < 0) return false;
  auto chain_contains = [&t](int from, int target) {
    static const std::unordered_set<std::string> kLinkRels = {
        "xcomp", "conj", "pcomp", "advcl", "relcl", "acl", "prep", "mark"};
    int cur = from;
    size_t guard = 0;
    while (cur >= 0 && guard++ <= t.size()) {
      if (cur == target) return true;
      if (!kLinkRels.count(t.node(cur).deprel)) return false;
      cur = t.node(cur).head;
    }
    return false;
  };
  return chain_contains(x, y) || chain_contains(y, x);
}

/// Climb appos/compound/conj links to the role-bearing head of the noun
/// phrase containing `node`.
int RoleBearer(const DepTree& t, int node) {
  int cur = node;
  size_t guard = 0;
  while (cur >= 0 && guard++ <= t.size()) {
    const std::string& rel = t.node(cur).deprel;
    if (rel == "appos" || rel == "compound" || rel == "conj" ||
        rel == "amod" || rel == "det") {
      cur = t.node(cur).head;
    } else {
      break;
    }
  }
  return cur;
}

}  // namespace

IocRole RoleOf(const AnnotatedTree& at, int node, int verb) {
  const DepTree& t = at.tree;
  int cur = RoleBearer(t, node);
  if (cur < 0) return IocRole::kNone;

  // A gerund (acl) hanging off this noun phrase takes it as subject:
  // "the launched process /usr/bin/gpg reading from ...".
  if (t.node(verb).head == cur && t.node(verb).deprel == "acl") {
    return IocRole::kSubject;
  }

  const std::string& rel = t.node(cur).deprel;
  int h = t.node(cur).head;
  if (rel == "nsubj") {
    if (h == verb || VerbsLinked(t, h, verb)) return IocRole::kSubject;
    return IocRole::kNone;
  }
  if (rel == "nsubjpass") {
    // The passive subject is the semantic object ("X was downloaded").
    if (h == verb || VerbsLinked(t, h, verb)) return IocRole::kDirectObject;
    return IocRole::kNone;
  }
  if (rel == "dobj") {
    if (h == verb) return IocRole::kDirectObject;
    if (h >= 0 && IsUseVerb(t.node(h).lemma) && VerbsLinked(t, h, verb)) {
      return IocRole::kInstrument;
    }
    return IocRole::kNone;
  }
  if (rel == "pobj") {
    int prep = h;
    if (prep < 0) return IocRole::kNone;
    const std::string& prel = t.node(prep).deprel;
    int pv = t.node(prep).head;
    if (prel == "agent" && (pv == verb || VerbsLinked(t, pv, verb))) {
      return IocRole::kSubject;
    }
    if (pv == verb) return IocRole::kPrepObject;
    return IocRole::kNone;
  }
  return IocRole::kNone;
}

std::vector<RawTriplet> ExtractIocRelations(
    const std::vector<AnnotatedTree>& trees, const MergeResult& iocs) {
  std::vector<RawTriplet> out;

  for (const AnnotatedTree& at : trees) {
    if (!at.relevant) continue;
    const DepTree& t = at.tree;

    // IOC occurrences in this tree: direct annotations plus coreference-
    // resolved pronouns (whose entity comes from the referent node).
    struct Occurrence {
      int node;
      int entity;
      bool via_coref;
    };
    std::vector<Occurrence> ioc_nodes;
    for (size_t i = 0; i < t.size(); ++i) {
      const NodeAnnotation& ann = at.ann[i];
      if (ann.ioc.has_value()) {
        int ent = iocs.Lookup(ann.ioc->text);
        if (ent >= 0) ioc_nodes.push_back({static_cast<int>(i), ent, false});
      } else if (ann.coref_tree >= 0 &&
                 ann.coref_tree < static_cast<int>(trees.size())) {
        const AnnotatedTree& ref_tree = trees[ann.coref_tree];
        if (ann.coref_node >= 0 &&
            ann.coref_node < static_cast<int>(ref_tree.ann.size()) &&
            ref_tree.ann[ann.coref_node].ioc.has_value()) {
          int ent = iocs.Lookup(ref_tree.ann[ann.coref_node].ioc->text);
          if (ent >= 0) ioc_nodes.push_back({static_cast<int>(i), ent, true});
        }
      }
    }
    if (ioc_nodes.size() < 2) {
      // A single IOC can still relate to itself ("X ... run itself") only
      // through explicit self-edges, which need two mentions; skip.
      continue;
    }

    // Enumerate ordered pairs (a before b in token order).
    for (size_t i = 0; i < ioc_nodes.size(); ++i) {
      for (size_t j = i + 1; j < ioc_nodes.size(); ++j) {
        const Occurrence& a = ioc_nodes[i];
        const Occurrence& b = ioc_nodes[j];
        // A pronoun and the literal mention it resolves to are the same
        // discourse entity, not a relation ("He ... by using /usr/bin/curl"
        // where He = curl). Explicit same-IOC self-loops (two literal
        // mentions, e.g. "X ... runs X") remain allowed.
        if (a.entity == b.entity && (a.via_coref || b.via_coref)) continue;
        int lca = t.Lca(a.node, b.node);
        if (lca < 0) continue;

        // Candidate verbs on the three path parts.
        std::vector<int> path_nodes;
        for (int n : t.PathToRoot(lca)) path_nodes.push_back(n);
        for (int n : t.PathToRoot(a.node)) {
          path_nodes.push_back(n);
          if (n == lca) break;
        }
        for (int n : t.PathToRoot(b.node)) {
          path_nodes.push_back(n);
          if (n == lca) break;
        }
        std::vector<int> candidates;
        for (int n : path_nodes) {
          if (at.ann[n].candidate_verb &&
              std::find(candidates.begin(), candidates.end(), n) ==
                  candidates.end()) {
            candidates.push_back(n);
          }
        }
        if (candidates.empty()) continue;

        // Select the candidate closest to the object IOC node b.
        int verb = candidates[0];
        for (int c : candidates) {
          if (std::abs(c - b.node) < std::abs(verb - b.node)) verb = c;
        }

        IocRole role_a = RoleOf(at, a.node, verb);
        IocRole role_b = RoleOf(at, b.node, verb);
        bool valid =
            ((role_a == IocRole::kSubject || role_a == IocRole::kInstrument) &&
             (role_b == IocRole::kDirectObject ||
              role_b == IocRole::kPrepObject)) ||
            (role_a == IocRole::kDirectObject &&
             role_b == IocRole::kPrepObject);
        if (!valid) continue;

        RawTriplet triplet;
        triplet.src_entity = a.entity;
        triplet.dst_entity = b.entity;
        triplet.verb = t.node(verb).lemma;
        triplet.occurrence = at.OccurrenceKey(verb);
        out.push_back(std::move(triplet));
      }
    }
  }
  return out;
}

}  // namespace raptor::extraction
