// Lock-cheap tracing core for the hunt lifecycle.
//
// A TraceSpan is one timed node in a per-hunt tree: monotonic start/end
// timestamps, a small set of named integer counters, optional string
// notes, and children created concurrently by pool workers. The tree is
// built while the hunt runs and rendered afterwards (EXPLAIN ANALYZE,
// slow-hunt log), so the design optimizes for cheap *construction*:
//
//   - Tracing is off by default. Every instrumentation site takes a
//     `TraceSpan*` that is nullptr when profiling is disabled; the
//     helpers below no-op on nullptr, so the disabled cost is one
//     pointer test per *span* (not per row — per-row counting stays in
//     the executors' existing stat structs and is folded into a span
//     once, at merge time).
//   - Child creation and counter/note mutation take the span's own
//     mutex. Spans are created per shard/morsel-worker/pattern, i.e.
//     O(workers) per hunt, never per row, so contention is negligible
//     while TSan-visible ordering stays well-defined.
//   - Finish() is idempotent and the end timestamp is atomic, so a
//     renderer observing a still-running subtree (slow-hunt logging of
//     a timed-out hunt) sees a coherent duration.
//
// Ownership: the root is a shared_ptr (attached to HuntResponse /
// ExecReport); children are owned by their parent. Raw `TraceSpan*`
// handles passed down the execution stack stay valid for the lifetime
// of the root, which the issuing service keeps alive until rendering.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace raptor::obs {

class TraceSpan {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TraceSpan(std::string name)
      : name_(std::move(name)), start_(Clock::now()) {}

  /// Heap-allocated root for attaching to responses/reports.
  static std::shared_ptr<TraceSpan> Root(std::string name) {
    return std::make_shared<TraceSpan>(std::move(name));
  }

  /// Create-and-start a child span. Thread-safe; returns a pointer that
  /// stays valid while this span (transitively, the root) is alive.
  TraceSpan* AddChild(std::string name);

  /// Graft an independently built (sub)tree under this span — used to
  /// attach an executor-owned tree to the service's hunt span.
  void Adopt(std::shared_ptr<TraceSpan> subtree);

  /// Accumulate `delta` into the named counter (created at zero).
  void Add(std::string_view counter, int64_t delta);
  /// Overwrite the named counter.
  void Set(std::string_view counter, int64_t value);
  /// Attach/overwrite a string attribute (dialect, tenant, status...).
  void Note(std::string_view key, std::string_view value);

  /// Stamp the end timestamp; idempotent (first call wins).
  void Finish();

  /// Override the measured window — for spans reconstructed after the
  /// fact from existing timestamps (e.g. queue wait: submit -> start).
  void SetWindow(Clock::time_point start, Clock::time_point end);

  const std::string& name() const { return name_; }
  Clock::time_point start() const { return start_; }
  bool finished() const {
    return end_ns_.load(std::memory_order_acquire) != 0;
  }
  /// Duration in seconds; a still-running span reads "so far".
  double seconds() const;
  int64_t duration_micros() const;

  /// Snapshots for rendering (copy under the lock; render paths are
  /// cold). Counter order is insertion order, stable across runs.
  std::vector<std::pair<std::string, int64_t>> counters() const;
  std::vector<std::pair<std::string, std::string>> notes() const;
  std::vector<std::shared_ptr<const TraceSpan>> children() const;

  /// Counter lookup; `def` when absent.
  int64_t counter(std::string_view name, int64_t def = 0) const;

 private:
  std::string name_;
  Clock::time_point start_;
  // End as nanoseconds-since-start; 0 = still running. Atomic so a
  // renderer racing Finish() (slow-log of timed-out hunts) is defined.
  std::atomic<int64_t> end_ns_{0};

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, int64_t>> counters_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<std::shared_ptr<TraceSpan>> children_;
};

/// Nullptr-tolerant helpers: every instrumentation site goes through
/// these so the profiling-off cost is a single branch.
inline TraceSpan* Child(TraceSpan* parent, std::string name) {
  return parent == nullptr ? nullptr : parent->AddChild(std::move(name));
}
inline void Add(TraceSpan* span, std::string_view counter, int64_t delta) {
  if (span != nullptr) span->Add(counter, delta);
}
inline void Set(TraceSpan* span, std::string_view counter, int64_t value) {
  if (span != nullptr) span->Set(counter, value);
}
inline void Note(TraceSpan* span, std::string_view key,
                 std::string_view value) {
  if (span != nullptr) span->Note(key, value);
}
inline void Finish(TraceSpan* span) {
  if (span != nullptr) span->Finish();
}

/// RAII child span: created on entry (nullptr parent -> no-op), finished
/// on scope exit.
class ScopedSpan {
 public:
  ScopedSpan(TraceSpan* parent, std::string name)
      : span_(Child(parent, std::move(name))) {}
  ~ScopedSpan() { obs::Finish(span_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  TraceSpan* get() const { return span_; }

 private:
  TraceSpan* span_;
};

}  // namespace raptor::obs
