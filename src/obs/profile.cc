#include "obs/profile.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"

namespace raptor::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void RenderTextNode(const TraceSpan& span, size_t depth, double root_seconds,
                    std::string* out) {
  double seconds = span.seconds();
  double pct = root_seconds > 0 ? 100.0 * seconds / root_seconds : 100.0;
  std::string line(2 * depth, ' ');
  line += span.name();
  // Pad the name column so durations align for typical tree widths.
  size_t target = 44;
  if (line.size() < target) line.append(target - line.size(), ' ');
  line += StrFormat(" %10.3f ms %5.1f%%", seconds * 1e3, pct);
  std::string detail;
  for (const auto& [key, value] : span.notes()) {
    detail += detail.empty() ? "" : " ";
    detail += key + "=" + value;
  }
  std::string counters;
  for (const auto& [key, value] : span.counters()) {
    counters += counters.empty() ? "" : " ";
    counters += key + "=" + std::to_string(value);
  }
  if (!detail.empty()) line += "  " + detail;
  if (!counters.empty()) line += "  [" + counters + "]";
  out->append(line);
  out->push_back('\n');
  for (const auto& child : span.children()) {
    RenderTextNode(*child, depth + 1, root_seconds, out);
  }
}

void RenderJsonNode(const TraceSpan& span, TraceSpan::Clock::time_point base,
                    std::string* out) {
  int64_t start_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         span.start() - base)
                         .count();
  out->append("{\"name\":\"" + JsonEscape(span.name()) + "\"");
  out->append(",\"start_us\":" + std::to_string(std::max<int64_t>(0, start_us)));
  out->append(",\"duration_us\":" + std::to_string(span.duration_micros()));
  auto notes = span.notes();
  if (!notes.empty()) {
    out->append(",\"notes\":{");
    bool first = true;
    for (const auto& [key, value] : notes) {
      if (!first) out->push_back(',');
      first = false;
      out->append("\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) +
                  "\"");
    }
    out->push_back('}');
  }
  auto counters = span.counters();
  if (!counters.empty()) {
    out->append(",\"counters\":{");
    bool first = true;
    for (const auto& [key, value] : counters) {
      if (!first) out->push_back(',');
      first = false;
      out->append("\"" + JsonEscape(key) + "\":" + std::to_string(value));
    }
    out->push_back('}');
  }
  auto children = span.children();
  if (!children.empty()) {
    out->append(",\"children\":[");
    bool first = true;
    for (const auto& child : children) {
      if (!first) out->push_back(',');
      first = false;
      RenderJsonNode(*child, base, out);
    }
    out->push_back(']');
  }
  out->push_back('}');
}

}  // namespace

std::string RenderProfileText(const TraceSpan& root) {
  std::string out;
  RenderTextNode(root, 0, root.seconds(), &out);
  return out;
}

std::string RenderProfileJson(const TraceSpan& root) {
  std::string out;
  RenderJsonNode(root, root.start(), &out);
  return out;
}

}  // namespace raptor::obs
