#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace raptor::obs {

void LogHistogram::Record(double value) {
  ++count;
  sum += value;
  max = std::max(max, value);
  // Bucket b covers [2^b, 2^(b+1)); bucket 0 is [0, 2).
  size_t b = 0;
  for (uint64_t v = static_cast<uint64_t>(std::max(0.0, value));
       v >= 2 && b + 1 < kBuckets; v >>= 1) {
    ++b;
  }
  ++buckets[b];
}

double LogHistogram::Quantile(double q) const {
  if (count == 0) return 0;
  double rank = q * static_cast<double>(count - 1);
  size_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (static_cast<double>(seen + buckets[b]) > rank) {
      double lo = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << b);
      double hi =
          std::min(max, static_cast<double>(uint64_t{1} << (b + 1)));
      double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets[b]);
      return lo + frac * std::max(0.0, hi - lo);
    }
    seen += buckets[b];
  }
  return max;
}

LogHistogram::Summary LogHistogram::Summarize() const {
  Summary out;
  out.count = count;
  if (count == 0) return out;
  out.mean = sum / static_cast<double>(count);
  out.max = max;
  out.p50 = Quantile(0.50);
  out.p90 = Quantile(0.90);
  out.p99 = Quantile(0.99);
  return out;
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(const std::string& name,
                                                    const std::string& help,
                                                    char type) {
  auto it = index_.find(name);
  if (it != index_.end()) return families_[it->second];
  index_[name] = families_.size();
  Family fam;
  fam.name = name;
  fam.help = help;
  fam.type = type;
  families_.push_back(std::move(fam));
  return families_.back();
}

void MetricsRegistry::Counter(const std::string& name,
                              const std::string& help, double value,
                              MetricLabels labels) {
  Series s;
  s.labels = std::move(labels);
  s.value = value;
  FamilyFor(name, help, 'c').series.push_back(std::move(s));
}

void MetricsRegistry::Gauge(const std::string& name, const std::string& help,
                            double value, MetricLabels labels) {
  Series s;
  s.labels = std::move(labels);
  s.value = value;
  FamilyFor(name, help, 'g').series.push_back(std::move(s));
}

void MetricsRegistry::Histogram(const std::string& name,
                                const std::string& help,
                                const LogHistogram& hist,
                                MetricLabels labels) {
  Series s;
  s.labels = std::move(labels);
  s.hist = hist;
  FamilyFor(name, help, 'h').series.push_back(std::move(s));
}

namespace {

std::string EscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string LabelBlock(const MetricLabels& labels,
                       const std::string& extra_key = "",
                       const std::string& extra_value = "") {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + EscapeLabelValue(extra_value) + "\"";
  }
  out += "}";
  return out;
}

std::string FormatValue(double v) {
  // Integral values print without a fractional tail so counters stay
  // readable; everything else keeps full precision.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return StrFormat("%.9g", v);
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::string out;
  for (const Family& fam : families_) {
    out += "# HELP " + fam.name + " " + fam.help + "\n";
    out += "# TYPE " + fam.name + " ";
    out += fam.type == 'c' ? "counter" : fam.type == 'g' ? "gauge"
                                                         : "histogram";
    out += "\n";
    for (const Series& s : fam.series) {
      if (fam.type != 'h') {
        out += fam.name + LabelBlock(s.labels) + " " + FormatValue(s.value) +
               "\n";
        continue;
      }
      // Cumulative buckets; trailing empty buckets collapse into +Inf.
      size_t last = 0;
      for (size_t b = 0; b < LogHistogram::kBuckets; ++b) {
        if (s.hist.buckets[b] != 0) last = b;
      }
      size_t cumulative = 0;
      for (size_t b = 0; b <= last; ++b) {
        cumulative += s.hist.buckets[b];
        std::string le = std::to_string(uint64_t{1} << (b + 1));
        out += fam.name + "_bucket" + LabelBlock(s.labels, "le", le) + " " +
               std::to_string(cumulative) + "\n";
      }
      out += fam.name + "_bucket" + LabelBlock(s.labels, "le", "+Inf") + " " +
             std::to_string(s.hist.count) + "\n";
      out += fam.name + "_sum" + LabelBlock(s.labels) + " " +
             FormatValue(s.hist.sum) + "\n";
      out += fam.name + "_count" + LabelBlock(s.labels) + " " +
             std::to_string(s.hist.count) + "\n";
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\"metrics\":[";
  bool first_fam = true;
  for (const Family& fam : families_) {
    if (!first_fam) out += ",";
    first_fam = false;
    out += "{\"name\":\"" + JsonEscape(fam.name) + "\",\"type\":\"";
    out += fam.type == 'c' ? "counter" : fam.type == 'g' ? "gauge"
                                                         : "histogram";
    out += "\",\"help\":\"" + JsonEscape(fam.help) + "\",\"series\":[";
    bool first_series = true;
    for (const Series& s : fam.series) {
      if (!first_series) out += ",";
      first_series = false;
      out += "{\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : s.labels) {
        if (!first_label) out += ",";
        first_label = false;
        out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
      }
      out += "}";
      if (fam.type != 'h') {
        out += ",\"value\":" + FormatValue(s.value);
      } else {
        LogHistogram::Summary sum = s.hist.Summarize();
        out += ",\"count\":" + std::to_string(sum.count);
        out += ",\"sum\":" + FormatValue(s.hist.sum);
        out += ",\"mean\":" + FormatValue(sum.mean);
        out += ",\"p50\":" + FormatValue(sum.p50);
        out += ",\"p90\":" + FormatValue(sum.p90);
        out += ",\"p99\":" + FormatValue(sum.p99);
        out += ",\"max\":" + FormatValue(sum.max);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::Render(MetricsFormat format) const {
  return format == MetricsFormat::kPrometheus ? ToPrometheus() : ToJson();
}

}  // namespace raptor::obs
