// Structured slow-hunt log: a JSONL sink that captures every hunt whose
// end-to-end latency crosses a threshold, with the hunt's span tree
// inlined — enough to reconstruct a production incident after the fact
// without having had profiling on by hand. HuntService forces tracing on
// for all hunts while a slow log is attached (the tracing core is cheap:
// O(workers) span allocations per hunt, nothing per row).
//
// One JSON object per line:
//   {"unix_ms":..., "tenant":"...", "dialect":"tbql", "status":"ok",
//    "seconds":1.234, "threshold_ms":500, "query":"...",
//    "profile":{...span tree as in RenderProfileJson...}}
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "obs/trace.h"

namespace raptor::obs {

class SlowHuntLog {
 public:
  /// Append to `path`; threshold in microseconds (hunts at or above it
  /// are logged). An unopenable path disables the log (reported once on
  /// stderr) rather than failing hunts.
  SlowHuntLog(std::string path, long long threshold_micros);
  ~SlowHuntLog();

  SlowHuntLog(const SlowHuntLog&) = delete;
  SlowHuntLog& operator=(const SlowHuntLog&) = delete;

  long long threshold_micros() const { return threshold_micros_; }

  /// Append one record if `latency_micros >= threshold`. `trace` may be
  /// null (profile omitted). Thread-safe; flushes per record so a crash
  /// loses at most the in-flight line.
  void MaybeLog(const std::string& tenant, const std::string& dialect,
                const std::string& query, const std::string& status,
                double latency_micros, const TraceSpan* trace);

  size_t logged() const;

 private:
  std::string path_;
  long long threshold_micros_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  size_t logged_ = 0;
};

}  // namespace raptor::obs
