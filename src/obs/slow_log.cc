#include "obs/slow_log.h"

#include <chrono>

#include "common/strings.h"
#include "obs/profile.h"

namespace raptor::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

SlowHuntLog::SlowHuntLog(std::string path, long long threshold_micros)
    : path_(std::move(path)), threshold_micros_(threshold_micros) {
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr) {
    std::fprintf(stderr, "warning: cannot open slow-hunt log %s\n",
                 path_.c_str());
  }
}

SlowHuntLog::~SlowHuntLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void SlowHuntLog::MaybeLog(const std::string& tenant,
                           const std::string& dialect,
                           const std::string& query,
                           const std::string& status, double latency_micros,
                           const TraceSpan* trace) {
  if (latency_micros < static_cast<double>(threshold_micros_)) return;
  long long unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  std::string line = "{";
  line += "\"unix_ms\":" + std::to_string(unix_ms);
  line += ",\"tenant\":\"" + JsonEscape(tenant) + "\"";
  line += ",\"dialect\":\"" + JsonEscape(dialect) + "\"";
  line += ",\"status\":\"" + JsonEscape(status) + "\"";
  line += StrFormat(",\"seconds\":%.6f", latency_micros / 1e6);
  line += ",\"threshold_ms\":" + std::to_string(threshold_micros_ / 1000);
  line += ",\"query\":\"" + JsonEscape(query) + "\"";
  if (trace != nullptr) {
    line += ",\"profile\":" + RenderProfileJson(*trace);
  }
  line += "}\n";
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
  ++logged_;
}

size_t SlowHuntLog::logged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return logged_;
}

}  // namespace raptor::obs
