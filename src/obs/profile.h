// EXPLAIN ANALYZE rendering: turn a finished TraceSpan tree into the
// analyst-facing hunt profile — an indented text tree (CLI
// `hunt --explain-analyze`) and a JSON document (tooling, slow-hunt
// log). Both renderers are pure functions of the tree; they never
// mutate it and are safe on a tree whose hunt already completed.
#pragma once

#include <string>

#include "obs/trace.h"

namespace raptor::obs {

/// Indented text tree: one line per span with its duration, percentage
/// of the root, counters, and notes.
///
///   hunt                                12.345 ms 100.0%  dialect=tbql
///     execute                           12.101 ms  98.0%
///       pattern[0]                       5.012 ms  40.6%  [rows_emitted=3]
std::string RenderProfileText(const TraceSpan& root);

/// JSON document, spans nested as in the tree:
/// {"name":...,"start_us":<offset from root>,"duration_us":...,
///  "counters":{...},"notes":{...},"children":[...]}
std::string RenderProfileJson(const TraceSpan& root);

}  // namespace raptor::obs
