#include "obs/trace.h"

#include <algorithm>

namespace raptor::obs {

TraceSpan* TraceSpan::AddChild(std::string name) {
  auto child = std::make_shared<TraceSpan>(std::move(name));
  TraceSpan* raw = child.get();
  std::lock_guard<std::mutex> lock(mu_);
  children_.push_back(std::move(child));
  return raw;
}

void TraceSpan::Adopt(std::shared_ptr<TraceSpan> subtree) {
  if (subtree == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  children_.push_back(std::move(subtree));
}

void TraceSpan::Add(std::string_view counter, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, value] : counters_) {
    if (name == counter) {
      value += delta;
      return;
    }
  }
  counters_.emplace_back(std::string(counter), delta);
}

void TraceSpan::Set(std::string_view counter, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, existing] : counters_) {
    if (name == counter) {
      existing = value;
      return;
    }
  }
  counters_.emplace_back(std::string(counter), value);
}

void TraceSpan::Note(std::string_view key, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, existing] : notes_) {
    if (name == key) {
      existing.assign(value);
      return;
    }
  }
  notes_.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::Finish() {
  int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_)
                   .count();
  if (ns <= 0) ns = 1;  // keep 0 meaning "running"
  int64_t expected = 0;
  end_ns_.compare_exchange_strong(expected, ns, std::memory_order_acq_rel);
}

void TraceSpan::SetWindow(Clock::time_point start, Clock::time_point end) {
  start_ = start;
  int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
          .count();
  end_ns_.store(std::max<int64_t>(ns, 1), std::memory_order_release);
}

double TraceSpan::seconds() const {
  int64_t ns = end_ns_.load(std::memory_order_acquire);
  if (ns == 0) {
    ns = std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start_)
             .count();
  }
  return static_cast<double>(ns) * 1e-9;
}

int64_t TraceSpan::duration_micros() const {
  int64_t ns = end_ns_.load(std::memory_order_acquire);
  if (ns == 0) {
    ns = std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start_)
             .count();
  }
  return ns / 1000;
}

std::vector<std::pair<std::string, int64_t>> TraceSpan::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<std::pair<std::string, std::string>> TraceSpan::notes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return notes_;
}

std::vector<std::shared_ptr<const TraceSpan>> TraceSpan::children() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::shared_ptr<const TraceSpan>>(children_.begin(),
                                                       children_.end());
}

int64_t TraceSpan::counter(std::string_view name, int64_t def) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, value] : counters_) {
    if (key == name) return value;
  }
  return def;
}

}  // namespace raptor::obs
