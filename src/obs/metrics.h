// Process-facing telemetry registry.
//
// The service layers each keep their own cheap internal counters
// (HuntService::Stats/Metrics, stream::IngestorStats,
// persist::DurabilityStats, storage::QueryResultCache hit/miss atomics)
// — those stay, they are the lock-cheap write side. MetricsRegistry is
// the uniform *read* side: an export call walks the live structs and
// registers every value by metric name (with optional labels), then the
// registry renders the whole set as Prometheus text exposition format
// or JSON. `ThreatRaptor::ExportMetrics()` is the one-call entry point;
// subsystems expose `CollectMetrics(MetricsRegistry*)` so callers owning
// extra components (e.g. the CLI's StreamIngestor) can merge them into
// the same export.
//
// LogHistogram is the shared histogram type: the log2-bucketed,
// constant-memory latency histogram that HuntService grew in PR 7,
// promoted here so every subsystem records distributions with identical
// bucket and quantile-interpolation semantics (locked by obs_test).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace raptor::obs {

/// Fixed log2-bucketed histogram over non-negative values (canonically
/// microseconds): constant memory, lock-cheap Record, quantiles by
/// rank-in-bucket linear interpolation. Bucket b covers [2^b, 2^(b+1));
/// bucket 0 is [0, 2); the last bucket absorbs everything >= 2^39.
struct LogHistogram {
  static constexpr size_t kBuckets = 40;
  std::array<size_t, kBuckets> buckets{};
  size_t count = 0;
  double sum = 0;
  double max = 0;

  void Record(double value);

  struct Summary {
    size_t count = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
    double mean = 0;
    double max = 0;
  };
  Summary Summarize() const;

  /// Quantile q in [0, 1] by rank-in-bucket interpolation. The fractional
  /// rank is q*(count-1); a truncated rank would pin high quantiles to the
  /// bucket floor at small counts (p99 of 2 samples must lean toward the
  /// larger one). The top populated bucket's span is capped at the
  /// observed max. 0 when empty.
  double Quantile(double q) const;
};

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

enum class MetricsFormat { kPrometheus, kJson };

/// Point-in-time metric snapshot, built by the CollectMetrics walkers and
/// rendered once. Families are registered by name with a type and help
/// string (first registration wins); each (name, labels) series holds one
/// value (or histogram state). Rendering is deterministic: families in
/// registration order, series in insertion order.
class MetricsRegistry {
 public:
  void Counter(const std::string& name, const std::string& help,
               double value, MetricLabels labels = {});
  void Gauge(const std::string& name, const std::string& help, double value,
             MetricLabels labels = {});
  void Histogram(const std::string& name, const std::string& help,
                 const LogHistogram& hist, MetricLabels labels = {});

  /// Prometheus text exposition format (# HELP/# TYPE + samples;
  /// histograms as cumulative _bucket{le=...}/_sum/_count series).
  std::string ToPrometheus() const;
  /// The same snapshot as a JSON document:
  /// {"metrics":[{"name","type","help","series":[{"labels","value"...}]}]}
  std::string ToJson() const;

  /// Render in `format`.
  std::string Render(MetricsFormat format) const;

  size_t family_count() const { return families_.size(); }

 private:
  struct Series {
    MetricLabels labels;
    double value = 0;
    LogHistogram hist;  // histogram families only
  };
  struct Family {
    std::string name;
    std::string help;
    char type = 'c';  // 'c'ounter | 'g'auge | 'h'istogram
    std::vector<Series> series;
  };

  Family& FamilyFor(const std::string& name, const std::string& help,
                    char type);

  std::vector<Family> families_;
  std::map<std::string, size_t> index_;  // name -> families_ slot
};

}  // namespace raptor::obs
