#!/usr/bin/env python3
"""Extract the schema keys of a BENCH_<name>.json report.

Prints the bench name, its parameter keys, and every label/metric pair
(sorted, one per line, values omitted). CI diffs this against the
checked-in baseline under bench/baselines/ so that renaming or dropping a
metric — which would silently break the perf-trajectory tracking across
commits — fails loudly, while value changes pass.

Usage: bench_schema_keys.py BENCH_query_execution.json
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        report = json.load(f)
    lines = ["bench: " + report["bench"]]
    lines += sorted("param: " + key for key in report.get("params", {}))
    lines += sorted(
        "metric: {}/{}".format(m["label"], m["metric"])
        for m in report.get("metrics", [])
    )
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main())
