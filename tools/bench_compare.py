#!/usr/bin/env python3
"""Compare two BENCH_<name>.json artifacts metric by metric.

Prints a per-workload (label) table of baseline vs candidate values with a
ratio column, plus added/removed rows for keys present in only one report.
For time-like metrics (name ends in _seconds, _micros, or _ms) the ratio is
reported as a speedup (baseline / candidate, > 1 = candidate faster); every
other metric reports the plain candidate / baseline change factor. A `total`
summary line aggregates the geometric-mean speedup over the time-like
metrics both reports share.

Each report carries a `meta` object (schema_version, build_type,
pool_threads) written by bench_util.h. When the two runs disagree on any of
those, the numeric comparison is refused — a Debug-vs-Release or
1-vs-8-thread diff is meaningless — and only the key inventory is printed.

CI runs this between the freshly built bench JSON and the artifact of the
baseline branch (when one is available) and pastes the output into the job
summary; it never fails the build — values are hardware-noisy, only the
schema check (bench_schema_keys.py) gates. Exit code is 0 for every
comparison outcome (including a refused one); 2 only for usage errors or
unreadable input files.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--markdown]
"""
import json
import math
import sys

TIME_SUFFIXES = ("_seconds", "_micros", "_ms")
META_KEYS = ("schema_version", "build_type", "pool_threads")


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    metrics = {}
    skipped = 0
    raw = doc.get("metrics", [])
    if not isinstance(raw, list):
        raw = []
        skipped = -1  # whole section malformed
    for m in raw:
        # Tolerate malformed entries (hand-edited or truncated artifacts):
        # skip anything that is not {label, metric, value-number}.
        if not isinstance(m, dict):
            skipped += 1
            continue
        label, metric, value = m.get("label"), m.get("metric"), m.get("value")
        if (
            not isinstance(label, str)
            or not isinstance(metric, str)
            or not isinstance(value, (int, float))
            or isinstance(value, bool)
        ):
            skipped += 1
            continue
        metrics[(label, metric)] = value
    if skipped:
        print(
            f"warning: {path}: skipped "
            + ("malformed 'metrics' section" if skipped < 0
               else f"{skipped} malformed metric entries"),
            file=sys.stderr,
        )
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        meta = {}
    return doc.get("bench", "?"), metrics, meta


def is_time(metric):
    return metric.endswith(TIME_SUFFIXES)


def fmt(v):
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def meta_mismatches(base_meta, cand_meta):
    """Config keys whose values differ between the runs.

    A key absent on one side (pre-meta artifact) counts as a mismatch only
    if the other side has it — two meta-less legacy reports still compare.
    """
    out = []
    for key in META_KEYS:
        b, c = base_meta.get(key), cand_meta.get(key)
        if b != c:
            out.append((key, b, c))
    return out


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    markdown = "--markdown" in sys.argv[1:]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        base_name, base, base_meta = load(args[0])
        cand_name, cand, cand_meta = load(args[1])
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    if base_name != cand_name:
        print(
            f"warning: comparing different benches "
            f"({base_name} vs {cand_name})",
            file=sys.stderr,
        )

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    mismatches = meta_mismatches(base_meta, cand_meta)
    if mismatches:
        hdr = f"Bench compare: {cand_name} — REFUSED (configs differ)"
        print(f"### {hdr}" if markdown else hdr)
        print()
        for key, b, c in mismatches:
            print(f"  {key}: baseline={b} candidate={c}")
        print()
        print(
            "Numeric comparison skipped: the runs were produced under "
            "different configurations, so ratios would measure the config, "
            "not the code."
        )

    if not mismatches:
        if markdown:
            print(f"### Bench compare: {cand_name}")
            print()
            print("| workload | metric | baseline | candidate | ratio |")
            print("|---|---|---:|---:|---:|")
            row = "| {} | {} | {} | {} | {} |"
        else:
            print(f"Bench compare: {cand_name}")
            w = max((len(f"{l}/{m}") for l, m in shared), default=20)
            row = "  {:<" + str(w + 2) + "} {:>12} -> {:>12}  {}"

        speedups = []
        for label, metric in shared:
            b, c = base[(label, metric)], cand[(label, metric)]
            if is_time(metric) and b > 0 and c > 0:
                ratio = b / c
                speedups.append(ratio)
                tag = f"{ratio:.2f}x speedup"
            elif b not in (0, 0.0):
                tag = f"{c / b:.2f}x change"
            else:
                tag = "n/a"
            if markdown:
                print(row.format(label, metric, fmt(b), fmt(c), tag))
            else:
                print(row.format(f"{label}/{metric}", fmt(b), fmt(c), tag))

        if speedups:
            geo = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
            line = (
                f"geomean speedup over {len(speedups)} time metrics: "
                f"{geo:.2f}x (baseline / candidate, > 1 = candidate faster)"
            )
            print()
            print(f"**{line}**" if markdown else line)

    # Workloads present in only one run are normal across branches that
    # add or retire benches — report them as added/removed, never fail.
    for title, keys in (
        (f"removed (in baseline only): {len(only_base)}", only_base),
        (f"added (in candidate only): {len(only_cand)}", only_cand),
    ):
        if keys:
            print()
            print(f"{title}:")
            for label, metric in keys:
                print(f"  {label}/{metric}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
