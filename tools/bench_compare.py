#!/usr/bin/env python3
"""Compare two BENCH_<name>.json artifacts metric by metric.

Prints a per-workload (label) table of baseline vs candidate values with a
ratio column, plus keys present in only one report. For time-like metrics
(name ends in _seconds, _micros, or _ms) the ratio is reported as a speedup
(baseline / candidate, > 1 = candidate faster); every other metric reports
the plain candidate / baseline change factor. A `total` summary line
aggregates the geometric-mean speedup over the time-like metrics both
reports share.

CI runs this between the freshly built bench JSON and the artifact of the
baseline branch (when one is available) and pastes the output into the job
summary; it never fails the build — values are hardware-noisy, only the
schema check (bench_schema_keys.py) gates.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--markdown]
"""
import json
import math
import sys

TIME_SUFFIXES = ("_seconds", "_micros", "_ms")


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    metrics = {}
    for m in doc.get("metrics", []):
        metrics[(m["label"], m["metric"])] = m["value"]
    return doc.get("bench", "?"), metrics


def is_time(metric):
    return metric.endswith(TIME_SUFFIXES)


def fmt(v):
    if isinstance(v, float):
        return f"{v:.6g}"
    return str(v)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    markdown = "--markdown" in sys.argv[1:]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    base_name, base = load(args[0])
    cand_name, cand = load(args[1])
    if base_name != cand_name:
        print(
            f"warning: comparing different benches "
            f"({base_name} vs {cand_name})",
            file=sys.stderr,
        )

    shared = sorted(set(base) & set(cand))
    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))

    if markdown:
        print(f"### Bench compare: {cand_name}")
        print()
        print("| workload | metric | baseline | candidate | ratio |")
        print("|---|---|---:|---:|---:|")
        row = "| {} | {} | {} | {} | {} |"
    else:
        print(f"Bench compare: {cand_name}")
        w = max((len(f"{l}/{m}") for l, m in shared), default=20)
        row = "  {:<" + str(w + 2) + "} {:>12} -> {:>12}  {}"

    speedups = []
    for label, metric in shared:
        b, c = base[(label, metric)], cand[(label, metric)]
        if is_time(metric) and b > 0 and c > 0:
            ratio = b / c
            speedups.append(ratio)
            tag = f"{ratio:.2f}x speedup"
        elif b not in (0, 0.0):
            tag = f"{c / b:.2f}x change"
        else:
            tag = "n/a"
        if markdown:
            print(row.format(label, metric, fmt(b), fmt(c), tag))
        else:
            print(row.format(f"{label}/{metric}", fmt(b), fmt(c), tag))

    if speedups:
        geo = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        line = (
            f"geomean speedup over {len(speedups)} time metrics: {geo:.2f}x "
            "(baseline / candidate, > 1 = candidate faster)"
        )
        print()
        print(f"**{line}**" if markdown else line)

    for title, keys in (("only in baseline", only_base),
                        ("only in candidate", only_cand)):
        if keys:
            print()
            print(f"{title}:")
            for label, metric in keys:
                print(f"  {label}/{metric}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
