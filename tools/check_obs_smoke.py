#!/usr/bin/env python3
"""CI smoke check for the observability surface.

Validates the artifacts of `threatraptor_cli hunt ... --explain-analyze
--profile-json profile.json --metrics-export`:

- the profile JSONL parses, and its first span tree is rooted at `hunt`
  with a non-negative duration and an `execute` child;
- the captured stdout contains the expected Prometheus metric families.

Usage: check_obs_smoke.py PROFILE.jsonl CAPTURED_STDOUT.txt
"""
import json
import sys

EXPECTED_METRICS = (
    "raptor_hunts_submitted_total",
    "raptor_hunt_latency_micros",
    "raptor_admission_queue_depth",
    "raptor_wal_bytes_total",
)


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        trees = [json.loads(line) for line in f if line.strip()]
    assert trees, "profile JSONL is empty"
    root = trees[0]
    assert root["name"] == "hunt", f"root span is {root.get('name')!r}"
    assert root["duration_us"] >= 0, root
    children = root.get("children", [])
    assert any(c.get("name") == "execute" for c in children), (
        f"no execute child under hunt: {[c.get('name') for c in children]}"
    )
    with open(sys.argv[2], encoding="utf-8") as f:
        metrics = f.read()
    missing = [m for m in EXPECTED_METRICS if m not in metrics]
    assert not missing, f"missing metric families: {missing}"
    print(
        f"profile ok ({len(trees)} span tree(s), root {root['duration_us']} "
        f"us); {len(EXPECTED_METRICS)} expected metric families present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
