// threatraptor — command-line interface to the library.
//
//   threatraptor list-cases
//       List the 18 benchmark attack cases.
//   threatraptor demo <case-id>
//       Run the full pipeline on a benchmark case: behavior graph, TBQL,
//       matched events, precision/recall against ground truth.
//   threatraptor extract <oscti.txt>
//       Extract a threat behavior graph + synthesized TBQL from a report.
//   threatraptor gen-log <case-id> <out.jsonl>
//       Export a case's audit log (benign noise + attack) as JSON lines.
//   threatraptor hunt (--log <log.jsonl> | --case <case-id>) --query <tbql>
//       [--query <tbql> ...] [--jobs N]
//       Execute TBQL queries against a log in exact search mode. Multiple
//       --query arguments submit through the concurrent HuntService with
//       up to N hunts in flight (default 1). --stats prints the service's
//       SLO metrics (queue depth, latency quantiles, per-tenant counters,
//       ingest-gate waits) once the hunts finish.
//   threatraptor hunt --follow <log.jsonl> --query <tbql> [--query ...]
//       [--standing] [--idle-ms N]
//       Continuous hunting: tail a growing JSON-lines audit log, ingesting
//       batches through the epoch gate as they arrive. With --standing the
//       queries register as standing hunts and print row deltas per epoch;
//       without it they run once after the stream ends. The stream ends
//       when the file stops growing for N ms (default 2000).
//   threatraptor fuzzy (--log <log.jsonl> | --case <case-id>) --query <tbql>
//       Execute a TBQL query in fuzzy (Poirot-alignment) search mode.
//   threatraptor catalog list
//       List the hunt library's built-in ATT&CK technique templates.
//   threatraptor hunt (--log ... | --case ...) --technique <id>
//       [--param name=value ...]
//       Instantiate a catalog technique (parameters fill its IOC slots;
//       missing ones match anything) and run it once.
//
// Durability (hunt command): --data-dir <dir> persists every ingested
// batch through a write-ahead log and checkpoints (--checkpoint-every N
// epochs) into <dir>. --restore hunts over the recovered store with no
// --log/--case. A durable --follow run resumes the tail at the recovered
// byte offset, so restarting it neither skips nor re-ingests records.
//
// Observability (hunt command): --explain-analyze prints each hunt's
// span-tree profile (per-pattern, per-shard timings and counters) after
// its results; --profile-json <file> appends the same profile as one JSON
// line per hunt ("-" prints to stdout). --metrics-export dumps the full
// telemetry registry (admission, gate, standing/MQO, WAL/checkpoint,
// stream-ingest series) as Prometheus text once the hunts finish.
// --slow-hunt-ms N [--slow-hunt-log <path>] appends a JSONL record — span
// tree inlined — for every hunt or standing refresh slower than N ms
// (default log: slow-hunts.jsonl).
//
//   threatraptor import-v1 <in.snap> --data-dir <dir>
//       One-release shim: ingest a v1 text snapshot into a durable store.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "audit/jsonl.h"
#include "audit/parser.h"
#include "engine/explain.h"
#include "cases/cases.h"
#include "huntlib/catalog.h"
#include "obs/profile.h"
#include "stream/event_stream.h"
#include "stream/ingestor.h"
#include "threatraptor.h"

namespace {

using namespace raptor;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  threatraptor list-cases\n"
      "  threatraptor demo <case-id>\n"
      "  threatraptor extract <oscti.txt>\n"
      "  threatraptor gen-log <case-id> <out.jsonl>\n"
      "  threatraptor hunt (--log <log.jsonl> | --case <id> | --restore)\n"
      "      --query <tbql> [--query <tbql> ...] [--jobs N] [--stats]\n"
      "      [--data-dir <dir>] [--checkpoint-every N]\n"
      "      [--explain-analyze] [--profile-json <file|->]\n"
      "      [--metrics-export] [--slow-hunt-ms N] [--slow-hunt-log <path>]\n"
      "  threatraptor hunt --follow <log.jsonl> --query <tbql> [--query ...]\n"
      "      [--standing] [--idle-ms N] [--stats] [--data-dir <dir>]\n"
      "      [--checkpoint-every N] [--explain-analyze] [--metrics-export]\n"
      "  threatraptor fuzzy (--log <log.jsonl> | --case <id>) --query "
      "<tbql>\n"
      "  threatraptor catalog list\n"
      "  threatraptor hunt (--log <log.jsonl> | --case <id> | --restore)\n"
      "      --technique <id> [--param name=value ...]\n"
      "  threatraptor explain --query <tbql>\n"
      "  threatraptor import-v1 <in.snap> --data-dir <dir>\n");
  return 2;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int ListCases() {
  std::printf("%-22s %s\n", "id", "name");
  for (const cases::AttackCase& c : cases::AllCases()) {
    std::printf("%-22s %s\n", c.id.c_str(), c.name.c_str());
  }
  return 0;
}

Result<std::unique_ptr<ThreatRaptor>> LoadFromCase(const std::string& id) {
  const cases::AttackCase* c = cases::FindCase(id);
  if (c == nullptr) return Status::NotFound("unknown case: " + id);
  auto tr = std::make_unique<ThreatRaptor>();
  RAPTOR_RETURN_NOT_OK(tr->IngestSyscalls(cases::BuildCaseLog(*c)));
  return tr;
}

Result<std::unique_ptr<ThreatRaptor>> LoadFromJsonl(const std::string& path) {
  auto content = ReadFile(path);
  if (!content.ok()) return content.status();
  auto records = audit::ParseJsonlRecords(content.value());
  if (!records.ok()) return records.status();
  auto tr = std::make_unique<ThreatRaptor>();
  RAPTOR_RETURN_NOT_OK(tr->IngestSyscalls(records.value()));
  return tr;
}

int CatalogList() {
  std::printf("%-8s %-20s %-8s %-7s %s\n", "id", "tactic", "severity",
              "dialect", "name");
  for (const huntlib::Technique& t : huntlib::AllTechniques()) {
    const char* dialect =
        t.dialect == service::QueryDialect::kTbql
            ? "tbql"
            : t.dialect == service::QueryDialect::kCypher ? "cypher" : "sql";
    std::string slots;
    for (const huntlib::IocSlot& slot : t.ioc_slots) {
      slots += slots.empty() ? "  [" : " ";
      slots += slot.param;
    }
    if (!slots.empty()) slots += "]";
    std::printf("%-8s %-20s %-8s %-7s %s%s\n", t.id.c_str(),
                huntlib::TacticName(t.tactic),
                huntlib::SeverityName(t.severity), dialect, t.name.c_str(),
                slots.c_str());
  }
  return 0;
}

int Demo(const std::string& id) {
  const cases::AttackCase* c = cases::FindCase(id);
  if (c == nullptr) {
    std::fprintf(stderr, "unknown case: %s (try list-cases)\n", id.c_str());
    return 1;
  }
  auto tr = LoadFromCase(id);
  if (!tr.ok()) {
    std::fprintf(stderr, "%s\n", tr.status().ToString().c_str());
    return 1;
  }
  std::printf("case: %s (%s)\n", c->id.c_str(), c->name.c_str());
  std::printf("store: %zu entities, %zu events\n\n",
              tr.value()->store()->entity_count(),
              tr.value()->store()->event_count());
  std::printf("OSCTI report:\n%s\n\n", c->oscti_text.c_str());
  auto outcome = tr.value()->HuntWithOsctiText(c->oscti_text);
  if (!outcome.ok()) {
    std::fprintf(stderr, "hunt failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("threat behavior graph:\n%s\n",
              outcome.value().extraction.graph.ToString().c_str());
  std::printf("synthesized TBQL query:\n%s\n\n",
              outcome.value().synthesis.tbql_text.c_str());
  std::printf("matched records:\n%s\n",
              outcome.value().report.results.ToString().c_str());
  auto gt = cases::GroundTruthEventIds(*c, *tr.value()->store());
  cases::PrScore score =
      cases::ScoreEvents(outcome.value().report.matched_event_ids, gt);
  std::printf("events: found %zu, ground truth %zu -> precision %zu/%zu, "
              "recall %zu/%zu\n",
              score.tp + score.fp, gt.size(), score.tp, score.tp + score.fp,
              score.tp, score.tp + score.fn);
  return 0;
}

int Extract(const std::string& path) {
  auto content = ReadFile(path);
  if (!content.ok()) {
    std::fprintf(stderr, "%s\n", content.status().ToString().c_str());
    return 1;
  }
  extraction::ThreatBehaviorExtractor extractor;
  auto result = extractor.Extract(content.value());
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("IOCs (%zu):\n", result.value().iocs.size());
  for (const extraction::IocEntity& e : result.value().iocs) {
    std::printf("  [%s] %s\n", nlp::IocTypeName(e.type), e.text.c_str());
  }
  std::printf("\nthreat behavior graph:\n%s\n",
              result.value().graph.ToString().c_str());
  synthesis::QuerySynthesizer synthesizer;
  auto syn = synthesizer.Synthesize(result.value().graph);
  if (syn.ok()) {
    std::printf("synthesized TBQL query:\n%s\n",
                syn.value().tbql_text.c_str());
  } else {
    std::printf("query synthesis: %s\n", syn.status().ToString().c_str());
  }
  return 0;
}

int GenLog(const std::string& id, const std::string& out_path) {
  const cases::AttackCase* c = cases::FindCase(id);
  if (c == nullptr) {
    std::fprintf(stderr, "unknown case: %s\n", id.c_str());
    return 1;
  }
  std::string jsonl = audit::RecordsToJsonl(cases::BuildCaseLog(*c));
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write: %s\n", out_path.c_str());
    return 1;
  }
  out << jsonl;
  std::printf("wrote %zu bytes to %s\n", jsonl.size(), out_path.c_str());
  return 0;
}

struct HuntArgs {
  std::string log_path;
  std::string case_id;
  std::string follow_path;  // continuous mode: tail this JSONL file
  bool standing = false;    // register queries as standing hunts
  long long idle_ms = 2000; // stream ends after this long without growth
  std::string data_dir;     // durable mode: WAL + checkpoints live here
  long long checkpoint_every = 0;  // auto-checkpoint interval in epochs
  bool restore = false;     // hunt over the data dir's recovered store
  bool stats = false;       // print the service's SLO metrics afterwards
  bool explain_analyze = false;  // print each hunt's span-tree profile
  std::string profile_json;      // append profile JSON lines here ("-": stdout)
  bool metrics_export = false;   // dump the telemetry registry (Prometheus)
  long long slow_hunt_ms = -1;   // slow-hunt log threshold (<0: off)
  std::string slow_hunt_log;     // slow-hunt log path (default when ms set)
  std::vector<std::string> queries;
  std::string technique;    // catalog technique id instead of --query
  std::map<std::string, std::string> params;  // --param name=value fills slots
  int jobs = 1;

  const std::string& query() const { return queries.front(); }

  /// Any flag that needs the span tree captured (HuntRequest::profile).
  bool WantProfile() const { return explain_analyze || !profile_json.empty(); }

  persist::DurabilityOptions Durability() const {
    persist::DurabilityOptions d;
    d.data_dir = data_dir;
    if (checkpoint_every > 0) {
      d.snapshot_interval_epochs = static_cast<uint64_t>(checkpoint_every);
    }
    return d;
  }
};

bool ParseHuntArgs(int argc, char** argv, int start, HuntArgs* out) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--log") {
      const char* v = next();
      if (v == nullptr) return false;
      out->log_path = v;
    } else if (arg == "--case") {
      const char* v = next();
      if (v == nullptr) return false;
      out->case_id = v;
    } else if (arg == "--follow") {
      const char* v = next();
      if (v == nullptr) return false;
      out->follow_path = v;
    } else if (arg == "--standing") {
      out->standing = true;
    } else if (arg == "--idle-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      out->idle_ms = std::atoll(v);
      if (out->idle_ms < 0) return false;
    } else if (arg == "--data-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      out->data_dir = v;
    } else if (arg == "--checkpoint-every") {
      const char* v = next();
      if (v == nullptr) return false;
      out->checkpoint_every = std::atoll(v);
      if (out->checkpoint_every < 1) return false;
    } else if (arg == "--restore") {
      out->restore = true;
    } else if (arg == "--stats") {
      out->stats = true;
    } else if (arg == "--explain-analyze") {
      out->explain_analyze = true;
    } else if (arg == "--profile-json") {
      const char* v = next();
      if (v == nullptr) return false;
      out->profile_json = v;
    } else if (arg == "--metrics-export") {
      out->metrics_export = true;
    } else if (arg == "--slow-hunt-ms") {
      const char* v = next();
      if (v == nullptr) return false;
      out->slow_hunt_ms = std::atoll(v);
      if (out->slow_hunt_ms < 0) return false;
    } else if (arg == "--slow-hunt-log") {
      const char* v = next();
      if (v == nullptr) return false;
      out->slow_hunt_log = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return false;
      out->queries.emplace_back(v);
    } else if (arg == "--technique") {
      const char* v = next();
      if (v == nullptr) return false;
      out->technique = v;
    } else if (arg == "--param") {
      const char* v = next();
      if (v == nullptr) return false;
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr || eq == v) return false;
      out->params[std::string(v, eq)] = std::string(eq + 1);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return false;
      out->jobs = std::atoi(v);
      if (out->jobs < 1) return false;
    } else {
      return false;
    }
  }
  if (out->standing && out->follow_path.empty()) return false;
  if (out->restore && out->data_dir.empty()) return false;
  if (!out->slow_hunt_log.empty() && out->slow_hunt_ms < 0) return false;
  if (out->checkpoint_every > 0 && out->data_dir.empty()) return false;
  // A catalog technique stands in for --query; mixing both (or passing
  // --param without a technique) is rejected.
  if (!out->technique.empty() && !out->queries.empty()) return false;
  if (!out->params.empty() && out->technique.empty()) return false;
  if (!out->technique.empty() && !out->follow_path.empty()) return false;
  return (!out->log_path.empty() || !out->case_id.empty() ||
          !out->follow_path.empty() || out->restore) &&
         (!out->queries.empty() || !out->technique.empty());
}

Result<std::unique_ptr<ThreatRaptor>> LoadForHunt(const HuntArgs& args) {
  if (!args.data_dir.empty()) {
    RAPTOR_ASSIGN_OR_RETURN(std::unique_ptr<ThreatRaptor> tr,
                            ThreatRaptor::Open(args.Durability()));
    if (!args.log_path.empty()) {
      auto content = ReadFile(args.log_path);
      if (!content.ok()) return content.status();
      RAPTOR_ASSIGN_OR_RETURN(std::vector<audit::SyscallRecord> records,
                              audit::ParseJsonlRecords(content.value()));
      RAPTOR_RETURN_NOT_OK(tr->IngestSyscalls(records));
    } else if (!args.case_id.empty()) {
      const cases::AttackCase* c = cases::FindCase(args.case_id);
      if (c == nullptr) {
        return Status::NotFound("unknown case: " + args.case_id);
      }
      RAPTOR_RETURN_NOT_OK(tr->IngestSyscalls(cases::BuildCaseLog(*c)));
    } else if (tr->store() == nullptr) {
      return Status::NotFound("nothing to restore from " + args.data_dir);
    }
    return tr;
  }
  return args.log_path.empty() ? LoadFromCase(args.case_id)
                               : LoadFromJsonl(args.log_path);
}

int PrintHuntReport(const engine::ExecReport& report) {
  std::printf("%s", report.results.ToString(50).c_str());
  std::printf("\n%zu rows in %.1f ms; data queries executed:\n",
              report.results.rows.size(), report.seconds * 1e3);
  for (const std::string& q : report.executed_queries) {
    std::printf("  %s\n", q.c_str());
  }
  return 0;
}

/// --explain-analyze / --profile-json: render one hunt's captured span
/// tree. JSON appends one line per hunt so multi-query invocations and
/// standing refreshes produce a JSONL stream; "-" prints to stdout.
int EmitProfile(const HuntArgs& args, const obs::TraceSpan* profile) {
  if (profile == nullptr) return 0;
  if (args.explain_analyze) {
    std::printf("--- explain analyze\n%s",
                obs::RenderProfileText(*profile).c_str());
  }
  if (!args.profile_json.empty()) {
    std::string json = obs::RenderProfileJson(*profile);
    if (args.profile_json == "-") {
      std::printf("%s\n", json.c_str());
    } else {
      std::ofstream out(args.profile_json, std::ios::app);
      if (!out) {
        std::fprintf(stderr, "cannot write: %s\n", args.profile_json.c_str());
        return 1;
      }
      out << json << "\n";
    }
  }
  return 0;
}

/// --slow-hunt-ms: attach the JSONL slow-hunt log to `service` (which
/// forces span capture on every hunt and standing refresh it runs).
void MaybeAttachSlowLog(service::HuntService* service, const HuntArgs& args) {
  if (service == nullptr || args.slow_hunt_ms < 0) return;
  const std::string& path =
      args.slow_hunt_log.empty() ? "slow-hunts.jsonl" : args.slow_hunt_log;
  service->ConfigureSlowLog(path, args.slow_hunt_ms * 1000);
}

/// `hunt --stats`: the service's SLO metrics snapshot, printed after the
/// hunts finish so the histograms cover every query of the invocation.
void PrintServiceMetrics(const service::HuntService::Metrics& m) {
  std::printf("--- service metrics\n");
  std::printf("queue depth %zu, running %zu (cost %.2f / budget %.2f), "
              "workers %zu\n",
              m.queue_depth, m.running, m.running_cost, m.cost_budget,
              m.workers);
  std::printf("epoch %llu (max standing lag %llu), standing hunts %zu\n",
              static_cast<unsigned long long>(m.epoch),
              static_cast<unsigned long long>(m.epoch_lag), m.standing);
  std::printf("ingest gate: %zu acquires, %.3f s total wait, %.3f s max, "
              "%zu consecutive\n",
              m.gate_acquires, m.gate_wait_seconds_total,
              m.gate_wait_seconds_max, m.consecutive_ingests);
  auto latency = [](const char* name,
                    const service::HuntService::LatencySummary& h) {
    std::printf("%s: n=%zu p50=%.2fms p90=%.2fms p99=%.2fms mean=%.2fms "
                "max=%.2fms\n",
                name, h.count, h.p50_micros / 1e3, h.p90_micros / 1e3,
                h.p99_micros / 1e3, h.mean_micros / 1e3, h.max_micros / 1e3);
  };
  latency("hunt latency", m.hunt_latency);
  latency("queue wait  ", m.queue_wait);
  std::printf("tenants: %zu distinct, %zu tracked\n", m.distinct_tenants,
              m.tracked_tenants);
  for (const service::HuntService::TenantMetrics& t : m.tenants) {
    std::printf("  %-12s w=%d cap=%zu queued=%zu running=%zu "
                "submitted=%zu completed=%zu rejected=%zu cancelled=%zu "
                "timed_out=%zu failed=%zu qps=%.2f\n",
                t.tenant.empty() ? "(default)" : t.tenant.c_str(), t.weight,
                t.max_queued, t.queued, t.running, t.submitted, t.completed,
                t.rejected, t.cancelled, t.timed_out, t.failed, t.qps);
  }
}

/// Continuous hunting: tail a JSONL audit log, ingesting through the epoch
/// gate; queries either stand (deltas print per epoch) or run once at the
/// end of the stream.
int FollowHunt(const HuntArgs& args) {
  std::unique_ptr<ThreatRaptor> owned;
  if (!args.data_dir.empty()) {
    auto opened = ThreatRaptor::Open(args.Durability());
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    owned = std::move(opened).value();
  } else {
    owned = std::make_unique<ThreatRaptor>();
  }
  ThreatRaptor& tr = *owned;
  // Bootstrap an empty store (unless recovery restored one) so the
  // service and schemas exist before the first standing refresh.
  if (tr.store() == nullptr) {
    if (Status boot = tr.IngestSyscalls({}); !boot.ok()) {
      std::fprintf(stderr, "%s\n", boot.ToString().c_str());
      return 1;
    }
  }
  service::HuntService* service = tr.hunt_service();
  MaybeAttachSlowLog(service, args);

  std::vector<service::StandingHandle> handles;
  if (args.standing) {
    for (size_t i = 0; i < args.queries.size(); ++i) {
      service::HuntRequest request;
      request.text = args.queries[i];
      request.profile = args.WantProfile();
      service::StandingSink sink;
      size_t qidx = i;
      sink.on_alert = [qidx, &args](const service::StandingUpdate& update) {
        std::printf("[epoch %llu] query %zu (%s): +%zu rows (%zu total%s)\n",
                    static_cast<unsigned long long>(update.epoch), qidx + 1,
                    args.queries[qidx].c_str(), update.delta.row_count(),
                    update.total_rows,
                    update.incremental ? ", incremental" : "");
        auto cursor = update.cursor();
        while (const std::vector<sql::Value>* row = cursor.Next()) {
          std::string line;
          for (const sql::Value& v : *row) {
            if (!line.empty()) line += " | ";
            line += v.ToString();
          }
          std::printf("  %s\n", line.c_str());
        }
        EmitProfile(args, update.profile.get());
      };
      sink.on_error = [qidx](const Status& status) {
        std::fprintf(stderr, "standing query %zu failed: %s\n", qidx + 1,
                     status.ToString().c_str());
      };
      handles.push_back(
          service->SubmitStanding(std::move(request), std::move(sink)));
    }
  }

  stream::JsonlTailOptions topts;
  if (tr.durable()) {
    // Resume the tail after the last batch the WAL/snapshot persisted; a
    // restarted follow neither skips nor re-ingests records.
    if (auto off = tr.restored_stream_offset(args.follow_path)) {
      topts.start_offset = static_cast<size_t>(*off);
      std::printf("resuming %s at byte %llu\n", args.follow_path.c_str(),
                  static_cast<unsigned long long>(*off));
    }
  }
  stream::JsonlTailSource source(args.follow_path, topts);
  stream::IngestorOptions iopts;
  iopts.idle_give_up_micros = args.idle_ms * 1000;
  iopts.finish = [&] { return tr.FlushIngest(); };
  stream::StreamIngestor ingestor(
      &source,
      [&](const std::vector<audit::SyscallRecord>& records) {
        if (!tr.durable()) return tr.IngestSyscalls(records);
        return tr.IngestSyscalls(records, args.follow_path,
                                 source.committed_offset());
      },
      iopts);
  std::printf("following %s (stop after %lld ms idle)...\n",
              args.follow_path.c_str(), args.idle_ms);
  ingestor.Start();
  ingestor.WaitEnd();
  stream::IngestorStats stats = ingestor.stats();
  if (!stats.error.ok()) {
    std::fprintf(stderr, "stream failed: %s\n",
                 stats.error.ToString().c_str());
    return 1;
  }
  for (service::StandingHandle& h : handles) {
    h.WaitEpoch(service->epoch());
  }
  std::printf("stream ended: %zu batches, %zu records, %llu epochs; "
              "store has %zu entities, %zu events\n",
              stats.batches, stats.records,
              static_cast<unsigned long long>(service->epoch()),
              tr.store()->entity_count(), tr.store()->event_count());
  // --metrics-export: the facade registry (service + durability series)
  // merged with the tail ingestor's stream counters.
  auto emit_metrics = [&] {
    if (!args.metrics_export) return;
    obs::MetricsRegistry registry;
    tr.CollectMetrics(&registry);
    ingestor.CollectMetrics(&registry);
    std::printf("%s", registry.Render(obs::MetricsFormat::kPrometheus).c_str());
  };
  // Final checkpoint + detach persistence (prints WAL/snapshot totals).
  auto close_durable = [&](int rc) {
    if (!tr.durable()) return rc;
    persist::DurabilityStats ds = tr.durability_stats();
    if (Status st = tr.Close(); !st.ok()) {
      std::fprintf(stderr, "close failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("durability: %llu WAL records (%llu bytes), "
                "%llu checkpoints (+1 on close)\n",
                static_cast<unsigned long long>(ds.wal_records),
                static_cast<unsigned long long>(ds.wal_bytes),
                static_cast<unsigned long long>(ds.checkpoints));
    return rc;
  };
  if (args.standing) {
    for (size_t i = 0; i < handles.size(); ++i) {
      std::printf("query %zu delivered %zu rows across %llu epochs\n", i + 1,
                  handles[i].total_rows(),
                  static_cast<unsigned long long>(
                      handles[i].delivered_epoch()));
    }
    if (args.stats) PrintServiceMetrics(tr.service_metrics());
    emit_metrics();
    return close_durable(0);
  }
  // One-shot mode: run the queries against the fully-ingested store.
  int rc = 0;
  for (const std::string& q : args.queries) {
    std::printf("=== %s\n", q.c_str());
    service::HuntRequest request;
    request.text = q;
    request.dialect = service::QueryDialect::kTbql;
    request.profile = args.WantProfile();
    auto response = service->Run(std::move(request));
    if (!response.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   response.status().ToString().c_str());
      rc = 1;
      continue;
    }
    PrintHuntReport(response.value().report);
    if (EmitProfile(args, response.value().profile.get()) != 0) rc = 1;
  }
  if (args.stats) PrintServiceMetrics(tr.service_metrics());
  emit_metrics();
  return close_durable(rc);
}

int Hunt(const HuntArgs& args) {
  if (!args.follow_path.empty()) return FollowHunt(args);
  auto tr = LoadForHunt(args);
  if (!tr.ok()) {
    std::fprintf(stderr, "%s\n", tr.status().ToString().c_str());
    return 1;
  }
  auto close_durable = [&](int rc) {
    if (!tr.value()->durable()) return rc;
    if (Status st = tr.value()->Close(); !st.ok()) {
      std::fprintf(stderr, "close failed: %s\n", st.ToString().c_str());
      return 1;
    }
    return rc;
  };
  MaybeAttachSlowLog(tr.value()->hunt_service(), args);
  if (!args.technique.empty()) {
    const huntlib::Technique* t = huntlib::FindTechnique(args.technique);
    if (t != nullptr) {
      std::printf("=== %s %s (%s)\n", t->id.c_str(), t->name.c_str(),
                  huntlib::Instantiate(*t, args.params).c_str());
    }
    auto response = tr.value()->HuntTechnique(args.technique, args.params);
    if (!response.ok()) {
      std::fprintf(stderr, "hunt failed: %s\n",
                   response.status().ToString().c_str());
      return close_durable(1);
    }
    int rc = 0;
    if (response.value().dialect == service::QueryDialect::kTbql) {
      rc = PrintHuntReport(response.value().report);
    } else {
      std::string header;
      for (const std::string& col : response.value().columns) {
        if (!header.empty()) header += " | ";
        header += col;
      }
      std::printf("%s\n", header.c_str());
      size_t rows = 0;
      auto cursor = response.value().cursor();
      while (const std::vector<sql::Value>* row = cursor.Next()) {
        std::string line;
        for (const sql::Value& v : *row) {
          if (!line.empty()) line += " | ";
          line += v.ToString();
        }
        std::printf("%s\n", line.c_str());
        ++rows;
      }
      std::printf("%zu rows in %.1f ms\n", rows,
                  response.value().seconds * 1e3);
    }
    if (args.stats) PrintServiceMetrics(tr.value()->service_metrics());
    if (args.metrics_export) {
      std::printf("%s", tr.value()->ExportMetrics().c_str());
    }
    return close_durable(rc);
  }
  if (args.queries.size() == 1 && args.jobs <= 1) {
    // Through the facade's service (not the thin Hunt wrapper) so the
    // captured span tree rides back on the response.
    service::HuntRequest request;
    request.text = args.query();
    request.dialect = service::QueryDialect::kTbql;
    request.profile = args.WantProfile();
    auto response = tr.value()->hunt_service()->Run(std::move(request));
    if (!response.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   response.status().ToString().c_str());
      return close_durable(1);
    }
    int rc = PrintHuntReport(response.value().report);
    if (rc == 0) rc = EmitProfile(args, response.value().profile.get());
    if (args.stats) PrintServiceMetrics(tr.value()->service_metrics());
    if (args.metrics_export) {
      std::printf("%s", tr.value()->ExportMetrics().c_str());
    }
    return close_durable(rc);
  }
  // Multiple queries (or an explicit --jobs): submit everything through
  // the hunt service and let up to `jobs` hunts run concurrently; results
  // print in submission order regardless of completion order.
  service::HuntServiceOptions opts;
  opts.max_concurrent = static_cast<size_t>(args.jobs);
  service::HuntService service(tr.value()->store(), opts);
  MaybeAttachSlowLog(&service, args);
  std::vector<service::HuntTicket> tickets;
  tickets.reserve(args.queries.size());
  for (const std::string& q : args.queries) {
    service::HuntRequest request;
    request.text = q;
    request.profile = args.WantProfile();
    tickets.push_back(service.Submit(std::move(request)));
  }
  int rc = 0;
  for (size_t i = 0; i < tickets.size(); ++i) {
    std::printf("=== query %zu/%zu: %s\n", i + 1, tickets.size(),
                args.queries[i].c_str());
    const Status& status = tickets[i].Wait();
    if (!status.ok()) {
      std::fprintf(stderr, "query failed: %s\n", status.ToString().c_str());
      rc = 1;
      continue;
    }
    PrintHuntReport(tickets[i].response().report);
    if (EmitProfile(args, tickets[i].response().profile.get()) != 0) rc = 1;
  }
  if (args.stats) PrintServiceMetrics(service.metrics());
  if (args.metrics_export) {
    // The hunts ran on this invocation-local service; export its series
    // (the facade's service only saw the ingest).
    obs::MetricsRegistry registry;
    service.CollectMetrics(&registry);
    std::printf("%s", registry.Render(obs::MetricsFormat::kPrometheus).c_str());
  }
  return close_durable(rc);
}

int Fuzzy(const HuntArgs& args) {
  auto tr = LoadForHunt(args);
  if (!tr.ok()) {
    std::fprintf(stderr, "%s\n", tr.status().ToString().c_str());
    return 1;
  }
  engine::FuzzyOptions opts;
  opts.score_threshold = 0.5;
  auto report = tr.value()->HuntFuzzy(args.query(), opts);
  if (!report.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("alignments accepted: %zu (considered %zu)%s\n",
              report.value().alignments.size(),
              report.value().candidate_alignments_considered,
              report.value().timed_out ? " [search budget expired]" : "");
  std::printf("%s", report.value().results.ToString(50).c_str());
  return 0;
}

int Explain(const std::string& query) {
  auto plan = engine::ExplainPlanText(query);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", plan.value().c_str());
  return 0;
}

int ImportV1(const std::string& snap_path, const std::string& data_dir) {
  persist::DurabilityOptions durability;
  durability.data_dir = data_dir;
  auto tr = ThreatRaptor::Open(durability);
  if (!tr.ok()) {
    std::fprintf(stderr, "%s\n", tr.status().ToString().c_str());
    return 1;
  }
  if (Status st = tr.value()->ImportV1Snapshot(snap_path); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("imported %s: store has %zu entities, %zu events\n",
              snap_path.c_str(), tr.value()->store()->entity_count(),
              tr.value()->store()->event_count());
  if (Status st = tr.value()->Close(); !st.ok()) {
    std::fprintf(stderr, "close failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("checkpointed into %s\n", data_dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  if (cmd == "list-cases") return ListCases();
  if (cmd == "demo" && argc == 3) return Demo(argv[2]);
  if (cmd == "extract" && argc == 3) return Extract(argv[2]);
  if (cmd == "gen-log" && argc == 4) return GenLog(argv[2], argv[3]);
  if (cmd == "explain" && argc == 4 && std::strcmp(argv[2], "--query") == 0) {
    return Explain(argv[3]);
  }
  if (cmd == "import-v1" && argc == 5 &&
      std::strcmp(argv[3], "--data-dir") == 0) {
    return ImportV1(argv[2], argv[4]);
  }
  if (cmd == "catalog" && argc == 3 && std::strcmp(argv[2], "list") == 0) {
    return CatalogList();
  }
  if (cmd == "hunt" || cmd == "fuzzy") {
    HuntArgs args;
    if (!ParseHuntArgs(argc, argv, 2, &args)) return Usage();
    if (cmd == "fuzzy" && !args.technique.empty()) return Usage();
    return cmd == "hunt" ? Hunt(args) : Fuzzy(args);
  }
  return Usage();
}
